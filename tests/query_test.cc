/// Tests for the single-table query engine (filter/sort/project/limit).

#include <gtest/gtest.h>

#include "analyze/query.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

Table Fd() { return paper::MakeFig3Expected(); }

// ------------------------------------------------------------- predicates

TEST(PredicateTest, NumericComparisonsUseLooseParsing) {
  // "63%" >= 63 and "1.4M" > 1000000.
  EXPECT_TRUE(EvaluatePredicate(Value::String("63%"), CompareOp::kGe,
                                Value::Int(63)));
  EXPECT_TRUE(EvaluatePredicate(Value::String("1.4M"), CompareOp::kGt,
                                Value::Int(1000000)));
  EXPECT_FALSE(EvaluatePredicate(Value::String("263k"), CompareOp::kGt,
                                 Value::String("1.4M")));
}

TEST(PredicateTest, StringComparisonsAndContains) {
  EXPECT_TRUE(EvaluatePredicate(Value::String("Berlin"), CompareOp::kEq,
                                Value::String("Berlin")));
  EXPECT_TRUE(EvaluatePredicate(Value::String("Berlin"), CompareOp::kLt,
                                Value::String("Boston")));
  EXPECT_TRUE(EvaluatePredicate(Value::String("Mexico City"),
                                CompareOp::kContains,
                                Value::String("city")));
  EXPECT_FALSE(EvaluatePredicate(Value::String("Berlin"),
                                 CompareOp::kContains,
                                 Value::String("bos")));
}

TEST(PredicateTest, NullSemantics) {
  EXPECT_TRUE(EvaluatePredicate(Value::Null(), CompareOp::kIsNull, Value()));
  EXPECT_TRUE(EvaluatePredicate(Value::ProducedNull(), CompareOp::kIsNull,
                                Value()));
  EXPECT_FALSE(EvaluatePredicate(Value::Null(), CompareOp::kNotNull, Value()));
  // Nulls fail every ordinary comparison, even kNe.
  EXPECT_FALSE(EvaluatePredicate(Value::Null(), CompareOp::kEq, Value::Int(1)));
  EXPECT_FALSE(EvaluatePredicate(Value::Null(), CompareOp::kNe, Value::Int(1)));
}

// ------------------------------------------------------------------ query

TEST(QueryTest, FilterOnLooseNumbers) {
  // Cities with vaccination rate >= 70: Manchester (78), Barcelona (82),
  // Toronto (83).
  QuerySpec q;
  q.where = {{"Vaccination Rate (1+ dose)", CompareOp::kGe, Value::Int(70)}};
  auto r = RunQuery(Fd(), q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 3u);
}

TEST(QueryTest, ProjectAndOrderAndLimit) {
  QuerySpec q;
  q.select = {"City", "Death Rate (per 100k residents)"};
  q.where = {{"Death Rate (per 100k residents)", CompareOp::kNotNull, Value()}};
  q.order_by = {{"Death Rate (per 100k residents)", /*ascending=*/false}};
  q.limit = 2;
  auto r = RunQuery(Fd(), q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->num_columns(), 2u);
  EXPECT_EQ(r->at(0, 0).as_string(), "Boston");   // 335
  EXPECT_EQ(r->at(1, 0).as_string(), "Barcelona"); // 275
}

TEST(QueryTest, ConjunctivePredicates) {
  QuerySpec q;
  q.where = {{"Vaccination Rate (1+ dose)", CompareOp::kNotNull, Value()},
             {"Total Cases", CompareOp::kNotNull, Value()},
             {"Vaccination Rate (1+ dose)", CompareOp::kLt, Value::Int(80)}};
  auto r = RunQuery(Fd(), q);
  ASSERT_TRUE(r.ok());
  // Complete rows with rate < 80: Berlin (63), Boston (62).
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(QueryTest, IsNullFindsIncompleteTuples) {
  QuerySpec q;
  q.select = {"City"};
  q.where = {{"Total Cases", CompareOp::kIsNull, Value()}};
  auto r = RunQuery(Fd(), q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);  // Manchester, Toronto, Mexico City
}

TEST(QueryTest, NullsSortLast) {
  QuerySpec q;
  q.select = {"City", "Total Cases"};
  q.order_by = {{"Total Cases", true}};
  auto r = RunQuery(Fd(), q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 7u);
  // Ascending: 263k, 1.4M, 2M, 2.68M, then the three null rows.
  EXPECT_EQ(r->at(0, 0).as_string(), "Boston");
  EXPECT_TRUE(r->at(4, 1).is_null());
  EXPECT_TRUE(r->at(6, 1).is_null());
}

TEST(QueryTest, ProvenanceFollowsRows) {
  QuerySpec q;
  q.where = {{"City", CompareOp::kEq, Value::String("Berlin")}};
  auto r = RunQuery(Fd(), q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->provenance(0), (std::vector<std::string>{"t1", "t7"}));
}

TEST(QueryTest, EmptySpecIsIdentity) {
  auto r = RunQuery(Fd(), QuerySpec{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->SameRowsAs(Fd()));
}

TEST(QueryTest, UnknownColumnsError) {
  QuerySpec q;
  q.select = {"nope"};
  EXPECT_EQ(RunQuery(Fd(), q).status().code(), StatusCode::kNotFound);
  QuerySpec q2;
  q2.where = {{"nope", CompareOp::kEq, Value::Int(1)}};
  EXPECT_EQ(RunQuery(Fd(), q2).status().code(), StatusCode::kNotFound);
  QuerySpec q3;
  q3.order_by = {{"nope", true}};
  EXPECT_EQ(RunQuery(Fd(), q3).status().code(), StatusCode::kNotFound);
}

TEST(QueryTest, MultiKeyOrdering) {
  Table t("t", Schema::FromNames({"g", "v"}));
  (void)t.AddRow({Value::String("b"), Value::Int(1)});
  (void)t.AddRow({Value::String("a"), Value::Int(2)});
  (void)t.AddRow({Value::String("a"), Value::Int(1)});
  QuerySpec q;
  q.order_by = {{"g", true}, {"v", false}};
  auto r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 0).as_string(), "a");
  EXPECT_EQ(r->at(0, 1).as_int(), 2);
  EXPECT_EQ(r->at(1, 1).as_int(), 1);
  EXPECT_EQ(r->at(2, 0).as_string(), "b");
}

}  // namespace
}  // namespace dialite
