#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sketch/hyperloglog.h"
#include "sketch/lsh_ensemble.h"
#include "sketch/lsh_index.h"
#include "sketch/minhash.h"
#include "text/similarity.h"

namespace dialite {
namespace {

std::vector<std::string> MakeTokens(int begin, int end, const std::string& p) {
  std::vector<std::string> out;
  for (int i = begin; i < end; ++i) out.push_back(p + std::to_string(i));
  return out;
}

// ------------------------------------------------------------- MinHash

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  auto toks = MakeTokens(0, 100, "t");
  MinHash a = MinHash::FromTokens(toks, 128);
  MinHash b = MinHash::FromTokens(toks, 128);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  MinHash a = MinHash::FromTokens(MakeTokens(0, 100, "a"), 128);
  MinHash b = MinHash::FromTokens(MakeTokens(0, 100, "b"), 128);
  EXPECT_LT(a.EstimateJaccard(b), 0.05);
}

TEST(MinHashTest, EstimateTracksTrueJaccard) {
  // |A∩B| = 50, |A∪B| = 150 → J = 1/3.
  auto a_toks = MakeTokens(0, 100, "x");
  auto b_toks = MakeTokens(50, 150, "x");
  MinHash a = MinHash::FromTokens(a_toks, 256);
  MinHash b = MinHash::FromTokens(b_toks, 256);
  double truth = Jaccard(a_toks, b_toks);
  EXPECT_NEAR(a.EstimateJaccard(b), truth, 0.12);
}

TEST(MinHashTest, OrderInsensitive) {
  MinHash a(64);
  a.Update("x");
  a.Update("y");
  MinHash b(64);
  b.Update("y");
  b.Update("x");
  EXPECT_EQ(a.signature(), b.signature());
}

TEST(MinHashTest, ContainmentEstimate) {
  // A ⊂ B with |A| = 50, |B| = 200 → containment(A in B) = 1.
  auto a_toks = MakeTokens(0, 50, "x");
  auto b_toks = MakeTokens(0, 200, "x");
  MinHash a = MinHash::FromTokens(a_toks, 256);
  MinHash b = MinHash::FromTokens(b_toks, 256);
  EXPECT_GT(a.EstimateContainment(b, 50, 200), 0.7);
  EXPECT_LT(b.EstimateContainment(a, 200, 50), 0.45);
}

TEST(MinHashTest, DifferentSeedsGiveDifferentSignatures) {
  auto toks = MakeTokens(0, 10, "t");
  MinHash a = MinHash::FromTokens(toks, 32, 1);
  MinHash b = MinHash::FromTokens(toks, 32, 2);
  EXPECT_NE(a.signature(), b.signature());
}

TEST(MinHashTest, BandHashDependsOnRange) {
  MinHash a = MinHash::FromTokens(MakeTokens(0, 10, "t"), 64);
  EXPECT_NE(a.BandHash(0, 8), a.BandHash(8, 16));
}

// ------------------------------------------------------------- LSH index

TEST(LshIndexTest, FindsNearDuplicates) {
  LshIndex idx(32, 4);  // 128 perms
  auto base = MakeTokens(0, 100, "v");
  MinHash mh_base = MinHash::FromTokens(base, 128);
  ASSERT_TRUE(idx.Insert(1, mh_base).ok());
  // 90% overlapping set.
  auto near = MakeTokens(10, 110, "v");
  MinHash mh_near = MinHash::FromTokens(near, 128);
  ASSERT_TRUE(idx.Insert(2, mh_near).ok());
  // Disjoint set.
  MinHash mh_far = MinHash::FromTokens(MakeTokens(0, 100, "w"), 128);
  ASSERT_TRUE(idx.Insert(3, mh_far).ok());

  std::vector<uint64_t> hits = idx.Query(mh_base);
  EXPECT_NE(std::find(hits.begin(), hits.end(), 1u), hits.end());
  EXPECT_NE(std::find(hits.begin(), hits.end(), 2u), hits.end());
  EXPECT_EQ(std::find(hits.begin(), hits.end(), 3u), hits.end());
}

TEST(LshIndexTest, InsertRejectsShortSignature) {
  LshIndex idx(32, 8);  // needs 256 perms
  MinHash mh(128);
  EXPECT_FALSE(idx.Insert(1, mh).ok());
}

TEST(LshIndexTest, CollisionProbabilityMonotone) {
  double lo = LshIndex::CollisionProbability(0.2, 16, 8);
  double hi = LshIndex::CollisionProbability(0.9, 16, 8);
  EXPECT_LT(lo, hi);
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 1.0);
}

TEST(LshIndexTest, OptimalParamsRespectBudget) {
  size_t b = 0;
  size_t r = 0;
  LshIndex::OptimalParams(0.8, 128, &b, &r);
  EXPECT_LE(b * r, 128u);
  EXPECT_GE(b, 1u);
  EXPECT_GE(r, 1u);
  // High threshold needs longer bands (more rows) than low threshold.
  size_t b2 = 0;
  size_t r2 = 0;
  LshIndex::OptimalParams(0.2, 128, &b2, &r2);
  EXPECT_GE(r, r2);
}

TEST(LshIndexTest, EmptyQueryReturnsNothing) {
  LshIndex idx(16, 8);
  MinHash mh(128);
  EXPECT_TRUE(idx.Query(mh).empty());
}

// --------------------------------------------------------- LSH Ensemble

TEST(LshEnsembleTest, ContainmentToJaccardFormula) {
  // c=1, |Q|=10, u=10 → j = 10/(10+10-10) = 1.
  EXPECT_DOUBLE_EQ(LshEnsemble::ContainmentToJaccard(1.0, 10, 10), 1.0);
  // c=0.5, |Q|=10, u=90 → j = 5/(10+90-5) = 5/95.
  EXPECT_NEAR(LshEnsemble::ContainmentToJaccard(0.5, 10, 90), 5.0 / 95.0,
              1e-12);
  EXPECT_LE(LshEnsemble::ContainmentToJaccard(1.0, 100, 1), 1.0);
}

TEST(LshEnsembleTest, FindsContainingSets) {
  LshEnsemble ens;
  // Query's values fully contained in set 1; half in set 2; none in 3.
  auto query = MakeTokens(0, 40, "q");
  ASSERT_TRUE(ens.Add(1, MakeTokens(0, 80, "q")).ok());
  ASSERT_TRUE(ens.Add(2, MakeTokens(20, 100, "q")).ok());
  ASSERT_TRUE(ens.Add(3, MakeTokens(0, 80, "z")).ok());
  // Padding domains of varied sizes so partitioning is non-trivial.
  for (uint64_t id = 10; id < 40; ++id) {
    ASSERT_TRUE(
        ens.Add(id, MakeTokens(0, static_cast<int>(10 + id * 7), "p" +
                                   std::to_string(id)))
            .ok());
  }
  ASSERT_TRUE(ens.Build().ok());

  std::vector<uint64_t> hits = ens.Query(query, 0.9);
  EXPECT_NE(std::find(hits.begin(), hits.end(), 1u), hits.end())
      << "fully-containing set must be found at t=0.9";
  EXPECT_EQ(std::find(hits.begin(), hits.end(), 3u), hits.end())
      << "disjoint set must not be found";

  std::vector<uint64_t> hits_low = ens.Query(query, 0.3);
  EXPECT_NE(std::find(hits_low.begin(), hits_low.end(), 2u), hits_low.end())
      << "half-containing set must appear at t=0.3";
}

TEST(LshEnsembleTest, AddAfterBuildFails) {
  LshEnsemble ens;
  ASSERT_TRUE(ens.Add(1, MakeTokens(0, 5, "a")).ok());
  ASSERT_TRUE(ens.Build().ok());
  EXPECT_FALSE(ens.Add(2, MakeTokens(0, 5, "b")).ok());
  EXPECT_FALSE(ens.Build().ok());
}

TEST(LshEnsembleTest, EmptyEnsembleQueriesEmpty) {
  LshEnsemble ens;
  ASSERT_TRUE(ens.Build().ok());
  EXPECT_TRUE(ens.Query(MakeTokens(0, 5, "q"), 0.5).empty());
}

TEST(LshEnsembleTest, EmptyQueryReturnsEmpty) {
  LshEnsemble ens;
  ASSERT_TRUE(ens.Add(1, MakeTokens(0, 5, "a")).ok());
  ASSERT_TRUE(ens.Build().ok());
  EXPECT_TRUE(ens.Query({}, 0.5).empty());
}


// ---------------------------------------------------------- HyperLogLog

// In the small range (raw estimate <= 2.5m with empty registers) the
// estimator switches to linear counting, which is near-exact: for n far
// below m = 2^p the relative error should be well under the ~1.04/sqrt(m)
// asymptotic bound.
TEST(HyperLogLogTest, LinearCountingSmallRangeAccuracy) {
  HyperLogLog hll(12);  // m = 4096 registers
  const size_t n = 100;
  for (size_t i = 0; i < n; ++i) hll.Add("item_" + std::to_string(i));
  const double est = hll.Estimate();
  EXPECT_NEAR(est, static_cast<double>(n), 0.05 * n)
      << "linear counting should be within 5% at n=" << n;
}

TEST(HyperLogLogTest, SmallRangeAcrossSizes) {
  // Accuracy holds across the whole linear-counting regime.
  for (size_t n : {10u, 50u, 500u, 2000u}) {
    HyperLogLog hll(12);
    for (size_t i = 0; i < n; ++i) hll.Add("v" + std::to_string(i));
    const double est = hll.Estimate();
    const double tolerance = std::max(2.0, 0.1 * static_cast<double>(n));
    EXPECT_NEAR(est, static_cast<double>(n), tolerance) << "n=" << n;
  }
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (size_t rep = 0; rep < 10; ++rep) {
    for (size_t i = 0; i < 64; ++i) hll.Add("dup_" + std::to_string(i));
  }
  EXPECT_NEAR(hll.Estimate(), 64.0, 5.0);
}

TEST(HyperLogLogTest, LargeRangeWithinAsymptoticError) {
  HyperLogLog hll(12);
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) hll.Add("big_" + std::to_string(i));
  // ~1.04/sqrt(4096) = 1.6%; allow 3x slack for one fixed seed.
  EXPECT_NEAR(hll.Estimate(), static_cast<double>(n), 0.05 * n);
}

TEST(HyperLogLogTest, MergeMatchesUnion) {
  HyperLogLog a(12), b(12), u(12);
  for (size_t i = 0; i < 300; ++i) {
    a.Add("a" + std::to_string(i));
    u.Add("a" + std::to_string(i));
  }
  for (size_t i = 0; i < 300; ++i) {
    b.Add("b" + std::to_string(i));
    u.Add("b" + std::to_string(i));
  }
  ASSERT_TRUE(a.Merge(b));
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

}  // namespace
}  // namespace dialite
