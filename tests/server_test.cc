/// Tests for the dialited serving layer: the HTTP/1.1 parser as a pure
/// function, endpoint dispatch without a network (DialiteServer::Handle),
/// and full socket round-trips — admission control, per-request deadlines,
/// keep-alive, /reload, and graceful drain.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "core/dialite.h"
#include "lake/paper_fixtures.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"
#include "table/csv.h"

namespace dialite {
namespace {

/// ctest runs every discovered test as its own parallel process, so the
/// per-suite snapshot path must be unique per process — a shared name
/// races one process's TearDownTestSuite against another's Start().
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name + "." + std::to_string(::getpid());
}

/// Saves a demo-lake snapshot (built indexes included) and returns its
/// path. Distractor count varies the lake so reload tests can tell
/// snapshots apart.
std::string MakeSnapshot(const std::string& name, size_t distractors) {
  DataLake lake = paper::MakeDemoLake(distractors);
  Dialite system(&lake);
  EXPECT_TRUE(system.RegisterDefaults().ok());
  EXPECT_TRUE(system.BuildIndexes().ok());
  std::string path = TempPath(name);
  EXPECT_TRUE(system.SaveSnapshot(path).ok());
  return path;
}

std::string QueryCsv() { return CsvWriter::ToString(paper::MakeT1()); }

// ------------------------------------------------------------ HTTP parser

TEST(HttpParserTest, ParsesRequestLineQueryAndBody) {
  const std::string raw =
      "POST /discover?algorithm=santos&k=5&name=my%20query HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "a,b\n1,2\n3,4";
  HttpRequest req;
  size_t consumed = 0;
  ASSERT_TRUE(ParseHttpRequest(raw, 1 << 20, &req, &consumed).ok());
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/discover");
  EXPECT_EQ(req.Param("algorithm"), "santos");
  EXPECT_EQ(req.Param("k"), "5");
  EXPECT_EQ(req.Param("name"), "my query");
  EXPECT_EQ(req.Param("missing", "fallback"), "fallback");
  EXPECT_EQ(req.body, "a,b\n1,2\n3,4");
}

TEST(HttpParserTest, IncompleteRequestsAskForMoreBytes) {
  HttpRequest req;
  size_t consumed = 0;
  // Truncated anywhere before the full body: kOutOfRange, never an error.
  const std::string raw =
      "GET /status HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  for (size_t keep = 0; keep < raw.size(); ++keep) {
    Status s = ParseHttpRequest(raw.substr(0, keep), 1 << 20, &req, &consumed);
    EXPECT_EQ(s.code(), StatusCode::kOutOfRange) << "keep=" << keep;
  }
  ASSERT_TRUE(ParseHttpRequest(raw, 1 << 20, &req, &consumed).ok());
  EXPECT_EQ(req.body, "body");
}

TEST(HttpParserTest, KeepAlivePipelinedRequestsConsumeExactly) {
  const std::string one = "GET /status HTTP/1.1\r\n\r\n";
  const std::string raw = one + one;
  HttpRequest req;
  size_t consumed = 0;
  ASSERT_TRUE(ParseHttpRequest(raw, 1 << 20, &req, &consumed).ok());
  EXPECT_EQ(consumed, one.size());
  ASSERT_TRUE(ParseHttpRequest(
                  std::string_view(raw).substr(consumed), 1 << 20, &req,
                  &consumed)
                  .ok());
  EXPECT_EQ(consumed, one.size());
}

TEST(HttpParserTest, RejectsMalformedAndOversized) {
  HttpRequest req;
  size_t consumed = 0;
  EXPECT_EQ(ParseHttpRequest("NONSENSE\r\n\r\n", 1 << 20, &req, &consumed)
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseHttpRequest("GET /x SMTP/1.0\r\n\r\n", 1 << 20, &req,
                             &consumed)
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseHttpRequest(
                "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 1 << 20,
                &req, &consumed)
                .code(),
            StatusCode::kParseError);
  // Declared body over the cap: rejected BEFORE buffering the body.
  EXPECT_EQ(ParseHttpRequest(
                "POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 100, &req,
                &consumed)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(HttpParserTest, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 504;
  resp.body = "{\"error\":\"deadline\"}";
  std::string wire = SerializeHttpResponse(resp);
  EXPECT_NE(wire.find("HTTP/1.1 504 Gateway Timeout\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 20\r\n"), std::string::npos);
  EXPECT_NE(wire.find(resp.body), std::string::npos);
}

// --------------------------------------------------- dispatch (no sockets)

class ServerHandleTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    snapshot_path_ = new std::string(MakeSnapshot("server_handle.snap", 6));
  }
  static void TearDownTestSuite() {
    std::remove(snapshot_path_->c_str());
    delete snapshot_path_;
    snapshot_path_ = nullptr;
  }

  void StartServer(ServerOptions options = {}) {
    options.port = 0;
    options.enable_test_endpoints = true;
    server_ = std::make_unique<DialiteServer>(options, &obs_);
    ASSERT_TRUE(server_->Start(*snapshot_path_).ok());
  }

  HttpRequest Post(const std::string& path,
                   std::map<std::string, std::string> query = {},
                   std::string body = "") {
    HttpRequest req;
    req.method = "POST";
    req.path = path;
    req.query = std::move(query);
    req.body = std::move(body);
    return req;
  }

  HttpRequest Get(const std::string& path) {
    HttpRequest req;
    req.method = "GET";
    req.path = path;
    return req;
  }

  static std::string* snapshot_path_;
  ObservabilityContext obs_;
  std::unique_ptr<DialiteServer> server_;
};

std::string* ServerHandleTest::snapshot_path_ = nullptr;

TEST_F(ServerHandleTest, StatusReportsEpochAndLake) {
  StartServer();
  HttpResponse resp = server_->Handle(Get("/status"), nullptr);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"epoch\":1"), std::string::npos);
  EXPECT_NE(resp.body.find("\"algorithms\":["), std::string::npos);
}

TEST_F(ServerHandleTest, DiscoverReturnsRankedHits) {
  StartServer();
  HttpResponse resp = server_->Handle(
      Post("/discover", {{"algorithm", "santos"}, {"k", "5"}, {"column", "1"}},
           QueryCsv()),
      nullptr);
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("\"hits\":["), std::string::npos);
  EXPECT_NE(resp.body.find("\"score\":"), std::string::npos);
}

TEST_F(ServerHandleTest, DiscoverRejectsMissingBodyAndUnknownAlgorithm) {
  StartServer();
  EXPECT_EQ(server_->Handle(Post("/discover"), nullptr).status, 400);
  HttpResponse resp = server_->Handle(
      Post("/discover", {{"algorithm", "no_such_algo"}}, QueryCsv()), nullptr);
  EXPECT_EQ(resp.status, 404) << resp.body;
}

TEST_F(ServerHandleTest, DiscoverHonorsPreExpiredDeadline) {
  StartServer();
  CancelToken cancel;
  cancel.Cancel();
  HttpResponse resp = server_->Handle(
      Post("/discover", {{"algorithm", "santos"}}, QueryCsv()), &cancel);
  EXPECT_EQ(resp.status, 504) << resp.body;
}

TEST_F(ServerHandleTest, AlignAndIntegrateOverLakeTables) {
  StartServer();
  std::shared_ptr<const Epoch> epoch = server_->lake_service().current();
  ASSERT_NE(epoch, nullptr);
  const std::vector<std::string>& names = epoch->system->lake->table_names();
  ASSERT_GE(names.size(), 2u);
  const std::string pair = names[0] + "," + names[1];

  HttpResponse align =
      server_->Handle(Post("/align", {{"tables", pair}}), nullptr);
  ASSERT_EQ(align.status, 200) << align.body;
  EXPECT_NE(align.body.find("\"clusters\":["), std::string::npos);

  HttpResponse integrate =
      server_->Handle(Post("/integrate", {{"tables", pair}}), nullptr);
  ASSERT_EQ(integrate.status, 200) << integrate.body;
  EXPECT_EQ(integrate.content_type, "text/csv");
  EXPECT_FALSE(integrate.body.empty());

  EXPECT_EQ(server_->Handle(Post("/align", {{"tables", names[0]}}), nullptr)
                .status,
            400);
  EXPECT_EQ(server_->Handle(
                      Post("/align", {{"tables", "no_such,tables_here"}}),
                      nullptr)
                .status,
            404);
}

TEST_F(ServerHandleTest, ReloadAdvancesEpochAndKeepsServing) {
  StartServer();
  EXPECT_EQ(server_->lake_service().current()->id, 1u);
  HttpResponse resp = server_->Handle(Post("/reload"), nullptr);
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("\"epoch\":2"), std::string::npos);
  EXPECT_EQ(server_->lake_service().current()->id, 2u);
  // A bad path fails the reload and keeps the old epoch serving.
  HttpResponse bad = server_->Handle(
      Post("/reload", {{"snapshot", "/nonexistent/lake.snap"}}), nullptr);
  EXPECT_NE(bad.status, 200);
  EXPECT_EQ(server_->lake_service().current()->id, 2u);
  EXPECT_EQ(server_->Handle(Get("/status"), nullptr).status, 200);
}

TEST_F(ServerHandleTest, UnknownPathAndWrongMethod) {
  StartServer();
  EXPECT_EQ(server_->Handle(Get("/nope"), nullptr).status, 404);
  EXPECT_EQ(server_->Handle(Get("/discover"), nullptr).status, 405);
  EXPECT_EQ(server_->Handle(Post("/status"), nullptr).status, 405);
}

TEST_F(ServerHandleTest, MetricsExportsRequestCounters) {
  StartServer();
  (void)server_->Handle(Get("/status"), nullptr);
  HttpResponse resp = server_->Handle(Get("/metrics"), nullptr);
  EXPECT_EQ(resp.status, 200);
  // The JSON document is the ObservabilityContext export.
  EXPECT_NE(resp.body.find("counters"), std::string::npos);
}

// ------------------------------------------------------- socket round-trip

/// One client request on a fresh connection; returns HTTP status, body out.
int Roundtrip(uint16_t port, const std::string& method,
              const std::string& target, const std::string& body,
              std::string* resp_body) {
  Result<TcpConn> conn = TcpConnect(port);
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  if (!conn.ok()) return -1;
  EXPECT_TRUE(
      conn->WriteAll(SerializeHttpRequest(method, target, body, true)).ok());
  std::string buffer;
  int status = 0;
  Status st = ReadHttpResponse(*conn, &buffer, &status, resp_body);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return st.ok() ? status : -1;
}

TEST_F(ServerHandleTest, SocketStatusAndDiscoverRoundTrip) {
  StartServer();
  std::string body;
  EXPECT_EQ(Roundtrip(server_->port(), "GET", "/status", "", &body), 200);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);

  body.clear();
  EXPECT_EQ(Roundtrip(server_->port(), "POST",
                      "/discover?algorithm=santos&k=5&column=1", QueryCsv(),
                      &body),
            200);
  EXPECT_NE(body.find("\"hits\":["), std::string::npos);
}

TEST_F(ServerHandleTest, SocketKeepAliveServesSequentialRequests) {
  StartServer();
  Result<TcpConn> conn = TcpConnect(server_->port());
  ASSERT_TRUE(conn.ok());
  std::string buffer;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        conn->WriteAll(SerializeHttpRequest("GET", "/status", "", false))
            .ok());
    int status = 0;
    std::string body;
    ASSERT_TRUE(ReadHttpResponse(*conn, &buffer, &status, &body).ok());
    EXPECT_EQ(status, 200);
  }
}

TEST_F(ServerHandleTest, SocketMalformedRequestAnswers400) {
  StartServer();
  Result<TcpConn> conn = TcpConnect(server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll("GARBAGE REQUEST\r\n\r\n").ok());
  std::string buffer, body;
  int status = 0;
  ASSERT_TRUE(ReadHttpResponse(*conn, &buffer, &status, &body).ok());
  EXPECT_EQ(status, 400);
}

TEST_F(ServerHandleTest, DeadlineAnswers504OverSocket) {
  StartServer();
  std::string body;
  EXPECT_EQ(Roundtrip(server_->port(), "GET",
                      "/_test/sleep?ms=10000&deadline_ms=50", "", &body),
            504);
  EXPECT_NE(body.find("deadline"), std::string::npos);
}

TEST_F(ServerHandleTest, AdmissionControlAnswers503WhenFull) {
  ServerOptions options;
  options.max_admitted = 0;  // every connection is over capacity
  StartServer(options);
  std::string body;
  EXPECT_EQ(Roundtrip(server_->port(), "GET", "/status", "", &body), 503);
  EXPECT_NE(body.find("capacity"), std::string::npos);
}

TEST_F(ServerHandleTest, ShutdownDrainsInFlightRequests) {
  StartServer();
  const uint16_t port = server_->port();
  std::atomic<int> slow_status{0};
  ThreadPool client(1);
  client.Submit([&] {
    std::string body;
    slow_status.store(
        Roundtrip(port, "GET", "/_test/sleep?ms=300", "", &body));
  });
  // Give the slow request time to be admitted, then drain. Bounded wait:
  // an unadmitted request must fail the test, not hang it.
  const auto wait_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->in_flight() == 0 &&
         std::chrono::steady_clock::now() < wait_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(server_->in_flight(), 0u) << "slow request was never admitted";
  server_->Shutdown();
  client.Wait();
  // The in-flight request completed (drained, not dropped)...
  EXPECT_EQ(slow_status.load(), 200);
  // ...and new connections are refused after the drain.
  Result<TcpConn> conn = TcpConnect(port, std::chrono::milliseconds(200));
  if (conn.ok()) {
    // A racing connect may still land in the closed listener's backlog;
    // it must never be served.
    (void)conn->WriteAll(SerializeHttpRequest("GET", "/status", "", true));
    std::string buffer, body;
    int status = 0;
    Status st = ReadHttpResponse(*conn, &buffer, &status, &body);
    EXPECT_FALSE(st.ok() && status == 200);
  }
}

}  // namespace
}  // namespace dialite
