#include <gtest/gtest.h>

#include <chrono>

#include "align/alite_matcher.h"
#include "align/alignment.h"
#include "common/cancel.h"
#include "lake/lake_generator.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

// --------------------------------------------------------------- Alignment

TEST(AlignmentTest, AddAndLookup) {
  Alignment a;
  size_t id0 = a.AddCluster({{"T1", 0}, {"T2", 0}}, "Country");
  size_t id1 = a.AddCluster({{"T1", 1}}, "");
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(a.num_clusters(), 2u);
  EXPECT_EQ(a.IdOf("T1", 0), 0u);
  EXPECT_EQ(a.IdOf("T2", 0), 0u);
  EXPECT_EQ(a.IdOf("T1", 1), 1u);
  EXPECT_EQ(a.IdOf("T9", 0), Alignment::npos);
  EXPECT_EQ(a.IdName(0), "Country");
  EXPECT_EQ(a.IdName(1), "iid1");  // auto-named
}

TEST(AlignmentTest, ValidateDetectsMissingColumn) {
  Table t1 = paper::MakeT1();
  Alignment a;
  a.AddCluster({{"T1", 0}}, "c0");
  // Columns 1, 2 of T1 unassigned.
  std::vector<const Table*> tables = {&t1};
  EXPECT_FALSE(a.Validate(tables).ok());
}

TEST(AlignmentTest, ValidateDetectsSameTableConflict) {
  Table t1 = paper::MakeT1();
  Alignment a;
  a.AddCluster({{"T1", 0}, {"T1", 1}}, "bad");
  a.AddCluster({{"T1", 2}}, "c2");
  std::vector<const Table*> tables = {&t1};
  EXPECT_FALSE(a.Validate(tables).ok());
}

// ------------------------------------------------------------ AliteMatcher

TEST(AliteMatcherTest, AlignsPaperCovidTables) {
  Table t1 = paper::MakeT1();
  Table t2 = paper::MakeT2();
  Table t3 = paper::MakeT3();
  AliteMatcher matcher;
  auto r = matcher.Align({&t1, &t2, &t3});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Alignment& a = *r;
  // Fig. 3: 5 integration IDs — Country, City, VaccinationRate,
  // TotalCases, DeathRate.
  EXPECT_EQ(a.num_clusters(), 5u);
  // City columns of all three tables share one id.
  EXPECT_EQ(a.IdOf("T1", 1), a.IdOf("T2", 1));
  EXPECT_EQ(a.IdOf("T1", 1), a.IdOf("T3", 0));
  // Country columns of T1 and T2 share one id.
  EXPECT_EQ(a.IdOf("T1", 0), a.IdOf("T2", 0));
  // Vaccination-rate columns of T1 and T2 share one id.
  EXPECT_EQ(a.IdOf("T1", 2), a.IdOf("T2", 2));
  // T3's numeric columns stay separate.
  EXPECT_NE(a.IdOf("T3", 1), a.IdOf("T3", 2));
  EXPECT_NE(a.IdOf("T3", 1), a.IdOf("T1", 2));
}

TEST(AliteMatcherTest, AlignsPaperVaccineTables) {
  Table t4 = paper::MakeT4();
  Table t5 = paper::MakeT5();
  Table t6 = paper::MakeT6();
  AliteMatcher matcher;
  auto r = matcher.Align({&t4, &t5, &t6});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Alignment& a = *r;
  // Fig. 8: 3 integration IDs — Vaccine, Approver, Country.
  EXPECT_EQ(a.num_clusters(), 3u);
  EXPECT_EQ(a.IdOf("T4", 0), a.IdOf("T6", 0));  // Vaccine
  EXPECT_EQ(a.IdOf("T4", 1), a.IdOf("T5", 1));  // Approver
  EXPECT_EQ(a.IdOf("T5", 0), a.IdOf("T6", 1));  // Country
}

TEST(AliteMatcherTest, ColumnSimilaritySignals) {
  Table t1 = paper::MakeT1();
  Table t2 = paper::MakeT2();
  AliteMatcher m;
  // Same concept, disjoint values (City/City) — embeddings + header carry.
  double city_city = m.ColumnSimilarity(t1, 1, t2, 1);
  // Different concepts (City vs Country).
  double city_country = m.ColumnSimilarity(t1, 1, t2, 0);
  EXPECT_GT(city_city, city_country);
  EXPECT_GE(city_city, 0.4);
}

TEST(AliteMatcherTest, TypeGateBlocksNumericTextMatches) {
  Table a("A", Schema::FromNames({"x"}));
  (void)a.AddRow({Value::Int(1)});
  (void)a.AddRow({Value::Int(2)});
  Table b("B", Schema::FromNames({"x"}));
  (void)b.AddRow({Value::String("Berlin")});
  (void)b.AddRow({Value::String("Paris")});
  AliteMatcher m;
  EXPECT_DOUBLE_EQ(m.ColumnSimilarity(a, 0, b, 0), 0.0);
  AliteMatcher::Params p;
  p.type_gate = false;
  AliteMatcher m2(p, &KnowledgeBase::BuiltIn());
  EXPECT_GT(m2.ColumnSimilarity(a, 0, b, 0), 0.0);  // header bonus applies
}

TEST(AliteMatcherTest, SameTableColumnsNeverCluster) {
  // Two identical-content columns in one table must not merge.
  Table a("A", Schema::FromNames({"city1", "city2"}));
  (void)a.AddRow({Value::String("Berlin"), Value::String("Berlin")});
  (void)a.AddRow({Value::String("Boston"), Value::String("Boston")});
  Table b("B", Schema::FromNames({"city"}));
  (void)b.AddRow({Value::String("Berlin")});
  AliteMatcher m;
  auto r = m.Align({&a, &b});
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->IdOf("A", 0), r->IdOf("A", 1));
}

TEST(AliteMatcherTest, RecoversGroundTruthWithCleanHeaders) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 4;
  p.header_noise = 0.0;
  p.domains = {"universities"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<const Table*> tables = out.lake.tables();
  AliteMatcher m;
  auto r = m.Align(tables);
  ASSERT_TRUE(r.ok());
  // Every same-base pair must share an id; every different-base must not.
  size_t correct = 0;
  size_t total = 0;
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t j = i + 1; j < tables.size(); ++j) {
      for (size_t ci = 0; ci < tables[i]->num_columns(); ++ci) {
        for (size_t cj = 0; cj < tables[j]->num_columns(); ++cj) {
          bool truth = out.truth.SameBaseColumn(tables[i]->name(), ci,
                                                tables[j]->name(), cj);
          bool pred = r->IdOf(tables[i]->name(), ci) ==
                      r->IdOf(tables[j]->name(), cj);
          ++total;
          if (truth == pred) ++correct;
        }
      }
    }
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.95)
      << correct << "/" << total;
}

TEST(AliteMatcherTest, SurvivesScrambledHeadersOnTextColumns) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 3;
  p.header_noise = 1.0;
  p.min_rows = 40;
  p.max_rows = 100;
  p.domains = {"world_cities"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<const Table*> tables = out.lake.tables();
  AliteMatcher m;
  auto r = m.Align(tables);
  ASSERT_TRUE(r.ok());
  // Text columns (City/Country/Continent) still overlap heavily in values;
  // count pairwise recall on those.
  size_t hit = 0;
  size_t want = 0;
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t j = i + 1; j < tables.size(); ++j) {
      for (size_t ci = 0; ci < tables[i]->num_columns(); ++ci) {
        const std::string& base =
            out.truth.BaseColumnOf(tables[i]->name(), ci);
        if (base != "City" && base != "Country" && base != "Continent") {
          continue;
        }
        for (size_t cj = 0; cj < tables[j]->num_columns(); ++cj) {
          if (out.truth.BaseColumnOf(tables[j]->name(), cj) != base) continue;
          ++want;
          if (r->IdOf(tables[i]->name(), ci) ==
              r->IdOf(tables[j]->name(), cj)) {
            ++hit;
          }
        }
      }
    }
  }
  if (want > 0) {
    EXPECT_GE(static_cast<double>(hit) / static_cast<double>(want), 0.7)
        << hit << "/" << want;
  }
}

// ------------------------------------------------------------- NameMatcher

TEST(NameMatcherTest, GroupsByNormalizedHeader) {
  Table a("A", Schema::FromNames({"Country", "City"}));
  (void)a.AddRow({Value::String("x"), Value::String("y")});
  Table b("B", Schema::FromNames({"country", "Population"}));
  (void)b.AddRow({Value::String("x"), Value::Int(5)});
  NameMatcher m;
  auto r = m.Align({&a, &b});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_clusters(), 3u);
  EXPECT_EQ(r->IdOf("A", 0), r->IdOf("B", 0));  // Country == country
  EXPECT_NE(r->IdOf("A", 1), r->IdOf("B", 1));
}

TEST(NameMatcherTest, SameTableDuplicateHeadersSplit) {
  Table a("A", Schema::FromNames({"x", "x"}));
  (void)a.AddRow({Value::Int(1), Value::Int(2)});
  Table b("B", Schema::FromNames({"x"}));
  (void)b.AddRow({Value::Int(1)});
  NameMatcher m;
  auto r = m.Align({&a, &b});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->IdOf("A", 0), r->IdOf("A", 1));
  // B.x joins the first cluster.
  EXPECT_EQ(r->IdOf("A", 0), r->IdOf("B", 0));
}

TEST(NameMatcherTest, CollapsesUnderScrambledHeaders) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 3;
  p.header_noise = 1.0;
  p.domains = {"world_cities"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<const Table*> tables = out.lake.tables();
  NameMatcher name_m;
  AliteMatcher alite_m;
  auto rn = name_m.Align(tables);
  auto ra = alite_m.Align(tables);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(ra.ok());
  // The name matcher fragments into more clusters than the holistic
  // matcher once headers are scrambled.
  EXPECT_GT(rn->num_clusters(), ra->num_clusters());
}

// --------------------------------------------------------- ManualAlignment

TEST(ManualAlignmentTest, AppliesGivenClustersAndSingletons) {
  Table t4 = paper::MakeT4();
  Table t5 = paper::MakeT5();
  ManualAlignment manual({{{"T4", 1}, {"T5", 1}}});
  auto r = manual.Align({&t4, &t5});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->IdOf("T4", 1), r->IdOf("T5", 1));
  EXPECT_NE(r->IdOf("T4", 0), r->IdOf("T5", 0));
  EXPECT_EQ(r->num_clusters(), 3u);
}

TEST(ManualAlignmentTest, RejectsUnknownReferences) {
  Table t4 = paper::MakeT4();
  ManualAlignment bad_table({{{"T9", 0}}});
  EXPECT_FALSE(bad_table.Align({&t4}).ok());
  ManualAlignment bad_col({{{"T4", 9}}});
  EXPECT_FALSE(bad_col.Align({&t4}).ok());
}

TEST(AliteMatcherTest, PreExpiredTokenAbortsAlignment) {
  // A fired per-request deadline must stop the matcher inside its first
  // polled stage (signature building / similarity matrix / merge loop),
  // surfacing kDeadlineExceeded instead of a partial alignment.
  Table t1 = paper::MakeT1();
  Table t2 = paper::MakeT2();
  Table t3 = paper::MakeT3();
  AliteMatcher matcher;
  CancelToken cancel;
  cancel.SetDeadlineAfter(std::chrono::nanoseconds(0));
  auto r = matcher.Align({&t1, &t2, &t3}, &cancel);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  // A null token (the default overload) still aligns fine.
  EXPECT_TRUE(matcher.Align({&t1, &t2, &t3}).ok());
}

}  // namespace
}  // namespace dialite
