#include <gtest/gtest.h>

#include <algorithm>

#include "kb/annotator.h"
#include "kb/embedding.h"
#include "kb/knowledge_base.h"
#include "kb/world.h"
#include "table/table.h"

namespace dialite {
namespace {

bool HasLabel(const std::vector<Annotation>& anns, const std::string& label) {
  return std::any_of(anns.begin(), anns.end(),
                     [&](const Annotation& a) { return a.label == label; });
}

// ---------------------------------------------------------------- World

TEST(WorldTest, BuiltInIsPopulated) {
  const World& w = World::BuiltIn();
  EXPECT_GE(w.countries().size(), 50u);
  EXPECT_GE(w.cities().size(), 100u);
  EXPECT_GE(w.vaccines().size(), 10u);
  EXPECT_GE(w.agencies().size(), 10u);
  EXPECT_GE(w.companies().size(), 25u);
  EXPECT_GE(w.universities().size(), 40u);
  EXPECT_GE(w.airlines().size(), 30u);
  EXPECT_GE(w.airports().size(), 50u);
  EXPECT_GE(w.clubs().size(), 30u);
}

TEST(WorldTest, CityCountriesResolvable) {
  const World& w = World::BuiltIn();
  std::unordered_set<std::string> countries;
  for (const CountryInfo& c : w.countries()) countries.insert(c.name);
  for (const CityInfo& c : w.cities()) {
    EXPECT_TRUE(countries.count(c.country))
        << c.name << " references unknown country " << c.country;
  }
}

TEST(WorldTest, UniversityCitiesResolvable) {
  const World& w = World::BuiltIn();
  std::unordered_set<std::string> cities;
  for (const CityInfo& c : w.cities()) cities.insert(c.name);
  // Singapore is a country-city; universities may reference it.
  cities.insert("Singapore");
  for (const UniversityInfo& u : w.universities()) {
    EXPECT_TRUE(cities.count(u.city))
        << u.name << " references unknown city " << u.city;
  }
}

// ------------------------------------------------------------------ KB

TEST(KnowledgeBaseTest, TypeHierarchyWalk) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddType("entity").ok());
  ASSERT_TRUE(kb.AddType("location", "entity").ok());
  ASSERT_TRUE(kb.AddType("city", "location").ok());
  ASSERT_TRUE(kb.AddEntity("Springfield", "city").ok());
  std::vector<std::string> types = kb.TypesOf("Springfield");
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], "city");
  EXPECT_EQ(types[1], "location");
  EXPECT_EQ(types[2], "entity");
}

TEST(KnowledgeBaseTest, AddTypeValidations) {
  KnowledgeBase kb;
  EXPECT_FALSE(kb.AddType("").ok());
  EXPECT_FALSE(kb.AddType("x", "nonexistent").ok());
  ASSERT_TRUE(kb.AddType("x").ok());
  EXPECT_EQ(kb.AddType("x").code(), StatusCode::kAlreadyExists);
}

TEST(KnowledgeBaseTest, AddEntityRequiresKnownType) {
  KnowledgeBase kb;
  EXPECT_FALSE(kb.AddEntity("v", "ghost").ok());
}

TEST(KnowledgeBaseTest, FactsRequireKnownEntities) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddType("t").ok());
  ASSERT_TRUE(kb.AddEntity("a", "t").ok());
  EXPECT_FALSE(kb.AddFact("a", "rel", "ghost").ok());
  EXPECT_FALSE(kb.AddFact("ghost", "rel", "a").ok());
  ASSERT_TRUE(kb.AddEntity("b", "t").ok());
  ASSERT_TRUE(kb.AddFact("a", "rel", "b").ok());
  EXPECT_EQ(kb.RelationBetween("a", "b").value(), "rel");
  EXPECT_FALSE(kb.RelationBetween("b", "a").has_value());
}

TEST(KnowledgeBaseTest, LookupIsCaseAndPunctuationInsensitive) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  EXPECT_TRUE(kb.Knows("berlin"));
  EXPECT_TRUE(kb.Knows("BERLIN"));
  EXPECT_TRUE(kb.Knows("Mexico  City"));
  EXPECT_FALSE(kb.Knows("Atlantis"));
}

TEST(KnowledgeBaseTest, BuiltInGeography) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  std::vector<std::string> t = kb.TypesOf("Berlin");
  EXPECT_TRUE(std::find(t.begin(), t.end(), "capital") != t.end());
  EXPECT_TRUE(std::find(t.begin(), t.end(), "city") != t.end());
  EXPECT_TRUE(std::find(t.begin(), t.end(), "location") != t.end());
  EXPECT_EQ(kb.RelationBetween("Berlin", "Germany").value(), "locatedIn");
  EXPECT_EQ(kb.RelationBetween("Boston", "United States").value(),
            "locatedIn");
}

TEST(KnowledgeBaseTest, BuiltInVaccinesAndAliases) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  EXPECT_EQ(kb.RelationBetween("Pfizer", "FDA").value(), "approvedBy");
  EXPECT_EQ(kb.RelationBetween("J&J", "FDA").value(), "approvedBy");
  EXPECT_EQ(kb.RelationBetween("JnJ", "United States").value(),
            "originatesFrom");
  EXPECT_EQ(kb.RelationBetween("USA", "United States").value(), "sameAs");
}

TEST(KnowledgeBaseTest, BuiltInMovies) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  std::vector<std::string> t = kb.TypesOf("The Silent Harbor");
  EXPECT_TRUE(std::find(t.begin(), t.end(), "movie") != t.end());
  EXPECT_TRUE(std::find(t.begin(), t.end(), "creative_work") != t.end());
  EXPECT_EQ(kb.RelationBetween("The Silent Harbor", "Elena Vasquez").value(),
            "directedBy");
  EXPECT_EQ(kb.RelationBetween("The Silent Harbor", "Spain").value(),
            "producedIn");
}

TEST(KnowledgeBaseTest, BuiltInCounts) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  EXPECT_GT(kb.num_entities(), 400u);
  EXPECT_GT(kb.num_facts(), 500u);
  EXPECT_GT(kb.num_types(), 20u);
}

// ----------------------------------------------------------- Annotator

TEST(AnnotatorTest, CityColumnAnnotatedAsCity) {
  ColumnAnnotator ann(&KnowledgeBase::BuiltIn());
  std::vector<Annotation> types =
      ann.AnnotateValues({"Berlin", "Boston", "Barcelona", "Toronto"});
  ASSERT_FALSE(types.empty());
  EXPECT_TRUE(HasLabel(types, "city"));
  // Coverage is full, so the top score should be 1.0 for "city"/"location".
  EXPECT_DOUBLE_EQ(types[0].score, 1.0);
}

TEST(AnnotatorTest, MixedColumnScoresFractional) {
  ColumnAnnotator ann(&KnowledgeBase::BuiltIn());
  std::vector<Annotation> types =
      ann.AnnotateValues({"Berlin", "Boston", "NotARealPlaceXyz", "Qqqq"});
  ASSERT_FALSE(types.empty());
  EXPECT_NEAR(types[0].score, 0.5, 1e-9);
}

TEST(AnnotatorTest, UnknownValuesYieldNothing) {
  ColumnAnnotator ann(&KnowledgeBase::BuiltIn());
  EXPECT_TRUE(ann.AnnotateValues({"zzz1", "zzz2"}).empty());
  EXPECT_TRUE(ann.AnnotateValues({}).empty());
}

TEST(AnnotatorTest, RelationAnnotation) {
  ColumnAnnotator ann(&KnowledgeBase::BuiltIn());
  std::vector<Annotation> rels = ann.AnnotateRelation(
      {{"Berlin", "Germany"}, {"Boston", "United States"},
       {"Barcelona", "Spain"}});
  ASSERT_FALSE(rels.empty());
  EXPECT_EQ(rels[0].label, "locatedIn");
  EXPECT_DOUBLE_EQ(rels[0].score, 1.0);
}

TEST(AnnotatorTest, ReverseRelationGetsInverseLabel) {
  ColumnAnnotator ann(&KnowledgeBase::BuiltIn());
  std::vector<Annotation> rels =
      ann.AnnotateRelation({{"Germany", "Berlin"}, {"Spain", "Madrid"}});
  ASSERT_FALSE(rels.empty());
  EXPECT_TRUE(HasLabel(rels, "locatedIn^-1"));
}

TEST(AnnotatorTest, TableColumnAndPairAnnotation) {
  Table t("t", Schema::FromNames({"City", "Country"}));
  ASSERT_TRUE(
      t.AddRow({Value::String("Berlin"), Value::String("Germany")}).ok());
  ASSERT_TRUE(
      t.AddRow({Value::String("Madrid"), Value::String("Spain")}).ok());
  ASSERT_TRUE(t.AddRow({Value::String("Lyon"), Value::Null()}).ok());
  ColumnAnnotator ann(&KnowledgeBase::BuiltIn());
  EXPECT_TRUE(HasLabel(ann.AnnotateColumn(t, 0), "city"));
  EXPECT_TRUE(HasLabel(ann.AnnotateColumn(t, 1), "country"));
  std::vector<Annotation> rels = ann.AnnotateColumnPair(t, 0, 1);
  ASSERT_FALSE(rels.empty());
  EXPECT_TRUE(HasLabel(rels, "locatedIn"));  // null row skipped
  EXPECT_DOUBLE_EQ(rels[0].score, 1.0);
  EXPECT_NEAR(ann.ColumnCoverage(t, 0), 1.0, 1e-9);
}

// ----------------------------------------------------------- Embedding

TEST(EmbeddingTest, CosineBasics) {
  Embedding a = {1.0f, 0.0f};
  Embedding b = {0.0f, 1.0f};
  Embedding c = {2.0f, 0.0f};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0, 1e-6);
  Embedding zero = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, zero), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, {1.0f}), 0.0);  // dim mismatch
}

TEST(EmbeddingTest, DeterministicAndNormalized) {
  HashEmbedder emb(&KnowledgeBase::BuiltIn());
  Embedding e1 = emb.EmbedValue("Berlin");
  Embedding e2 = emb.EmbedValue("Berlin");
  EXPECT_EQ(e1, e2);
  double norm = 0.0;
  for (float x : e1) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(EmbeddingTest, SameTypeValuesCloserThanCrossType) {
  HashEmbedder emb(&KnowledgeBase::BuiltIn());
  double city_city =
      CosineSimilarity(emb.EmbedValue("Berlin"), emb.EmbedValue("Boston"));
  double city_vaccine =
      CosineSimilarity(emb.EmbedValue("Berlin"), emb.EmbedValue("Pfizer"));
  EXPECT_GT(city_city, city_vaccine);
  EXPECT_GT(city_city, 0.3);
}

TEST(EmbeddingTest, SurfaceSimilarityWithoutKb) {
  HashEmbedder emb;  // no KB
  double typo = CosineSimilarity(emb.EmbedValue("vaccination"),
                                 emb.EmbedValue("vacination"));
  double far =
      CosineSimilarity(emb.EmbedValue("vaccination"), emb.EmbedValue("zebra"));
  EXPECT_GT(typo, far);
  EXPECT_GT(typo, 0.35);
}

TEST(EmbeddingTest, EmptyValueIsZeroVector) {
  HashEmbedder emb;
  Embedding e = emb.EmbedValue("");
  for (float x : e) EXPECT_EQ(x, 0.0f);
}

TEST(EmbeddingTest, ValueSetEmbeddingSeparatesColumns) {
  HashEmbedder emb(&KnowledgeBase::BuiltIn());
  Embedding cities = emb.EmbedValueSet({"Berlin", "Madrid", "Boston"});
  Embedding cities2 = emb.EmbedValueSet({"Toronto", "Lyon", "Osaka"});
  Embedding vaccines = emb.EmbedValueSet({"Pfizer", "Moderna", "Sinovac"});
  EXPECT_GT(CosineSimilarity(cities, cities2),
            CosineSimilarity(cities, vaccines));
}

TEST(EmbeddingTest, CountryAliasVeryClose) {
  HashEmbedder emb(&KnowledgeBase::BuiltIn());
  double alias =
      CosineSimilarity(emb.EmbedValue("USA"), emb.EmbedValue("United States"));
  double unrelated =
      CosineSimilarity(emb.EmbedValue("USA"), emb.EmbedValue("Premier League"));
  EXPECT_GT(alias, unrelated);
  EXPECT_GT(alias, 0.5);
}

}  // namespace
}  // namespace dialite
