/// Concurrency tests for ThreadPool: exception safety (a throwing task must
/// not wedge Wait()), zero-iteration and index-coverage edge cases, and the
/// documented-unsupported reentrant ParallelFor misuse.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace dialite {
namespace {

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, ThrowingTasksDoNotDeadlockWait) {
  // Regression: a throw used to escape WorkerLoop without decrementing
  // in_flight_, leaving Wait() blocked forever. Wait() must return (and
  // rethrow) even when several tasks throw.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&done, i] {
      if (i % 4 == 0) throw std::runtime_error("task " + std::to_string(i));
      ++done;
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(done.load(), 12);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error was claimed by the first Wait(); the pool keeps working.
  std::atomic<int> done{0};
  pool.Submit([&done] { ++done; });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, DestructorSwallowsUnclaimedException) {
  // A pool destroyed with a pending task exception must not call
  // std::terminate (throwing from a destructor would).
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("unclaimed"); });
}

TEST(ThreadPoolTest, ParallelForRethrowsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](size_t i) {
                                  if (i == 57) throw std::out_of_range("57");
                                }),
               std::out_of_range);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(10, [&sum](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(counts.size(), [&counts](size_t i) { ++counts[i]; });
  for (size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterationsReturnsImmediately) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, InWorkerThreadDetection) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.InWorkerThread());
  std::atomic<bool> inside{false};
  pool.Submit([&] { inside = pool.InWorkerThread(); });
  pool.Wait();
  EXPECT_TRUE(inside.load());
}

TEST(ThreadPoolTest, DistinctPoolsNestWithoutFallback) {
  // The supported nesting pattern (Dialite::BuildIndexes): a worker of one
  // pool drives ParallelFor on a *different* pool. That must take the real
  // parallel path — the work lands on the inner pool's workers.
  ThreadPool outer(1);
  ThreadPool inner(2);
  std::atomic<int> on_inner{0};
  outer.Submit([&] {
    inner.ParallelFor(4, [&](size_t) {
      if (inner.InWorkerThread()) ++on_inner;
    });
  });
  outer.Wait();
  EXPECT_EQ(on_inner.load(), 4);
}

#ifdef NDEBUG
TEST(ThreadPoolTest, ReentrantParallelForDegradesToInline) {
  // Documented-unsupported misuse: ParallelFor from a worker of the same
  // pool. Release builds must complete inline on the calling thread rather
  // than deadlock waiting on themselves. (Debug builds assert instead, so
  // this test only runs with NDEBUG.)
  ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  std::atomic<int> ran_inline{0};
  pool.Submit([&] {
    pool.ParallelFor(8, [&](size_t i) {
      sum += i;
      if (pool.InWorkerThread()) ++ran_inline;
    });
  });
  pool.Wait();
  EXPECT_EQ(sum.load(), 28u);
  // Inline fallback keeps the loop on the submitting worker thread.
  EXPECT_EQ(ran_inline.load(), 8);
}
#endif

}  // namespace
}  // namespace dialite
