/// Determinism tests for parallel offline indexing: for every discovery
/// algorithm, building with 1, 2, or 8 threads must produce identical
/// search results — and for the persistent indexes, byte-identical files.
/// This is the contract that lets num_threads default to hardware
/// concurrency without changing any observable behavior.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/dialite.h"
#include "discovery/cocoa.h"
#include "discovery/josie.h"
#include "discovery/keyword_search.h"
#include "discovery/lsh_ensemble_search.h"
#include "discovery/santos.h"
#include "discovery/starmie.h"
#include "discovery/tus.h"
#include "lake/data_lake.h"
#include "lake/lake_generator.h"

namespace dialite {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

/// One seeded lake shared by every test in this file (the cache inside is
/// deterministic and immutable, so sharing cannot couple tests).
const DataLake& SharedLake() {
  static const DataLake* lake = [] {
    LakeGeneratorParams params;
    params.fragments_per_domain = 2;
    params.seed = 7;
    SyntheticLakeGenerator gen(params);
    return new DataLake(std::move(gen.Generate().lake));
  }();
  return *lake;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Builds `Algo` at each thread count and verifies the top-20 search
/// results (names and exact scores) are identical.
template <typename Algo>
void ExpectDeterministicSearch() {
  const DataLake& lake = SharedLake();
  DiscoveryQuery query{lake.tables().front(), 0, 20};
  std::vector<std::vector<DiscoveryHit>> per_thread_hits;
  for (size_t threads : kThreadCounts) {
    Algo algo;
    algo.set_num_threads(threads);
    ASSERT_TRUE(algo.BuildIndex(lake).ok());
    Result<std::vector<DiscoveryHit>> hits = algo.Search(query);
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    per_thread_hits.push_back(std::move(hits).value());
  }
  // DiscoveryHit::operator== compares scores exactly — bitwise, not
  // approximately: parallel builds must not even reorder float additions.
  EXPECT_EQ(per_thread_hits[0], per_thread_hits[1]);
  EXPECT_EQ(per_thread_hits[0], per_thread_hits[2]);
}

/// Builds a PersistentIndex `Algo` at each thread count and verifies the
/// saved index files are byte-identical.
template <typename Algo>
void ExpectIdenticalIndexBytes(const std::string& tag) {
  const DataLake& lake = SharedLake();
  std::string reference;
  for (size_t threads : kThreadCounts) {
    Algo algo;
    algo.set_num_threads(threads);
    ASSERT_TRUE(algo.BuildIndex(lake).ok());
    std::string path = testing::TempDir() + "/" + tag + "_" +
                       std::to_string(threads) + ".idx";
    ASSERT_TRUE(algo.SaveIndex(path).ok());
    std::string bytes = ReadFileBytes(path);
    std::remove(path.c_str());
    ASSERT_FALSE(bytes.empty());
    if (reference.empty()) {
      reference = std::move(bytes);
    } else {
      EXPECT_EQ(bytes, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelBuildTest, SantosSearchDeterministic) {
  ExpectDeterministicSearch<SantosSearch>();
}

TEST(ParallelBuildTest, LshEnsembleSearchDeterministic) {
  ExpectDeterministicSearch<LshEnsembleSearch>();
}

TEST(ParallelBuildTest, JosieSearchDeterministic) {
  ExpectDeterministicSearch<JosieSearch>();
}

TEST(ParallelBuildTest, StarmieSearchDeterministic) {
  ExpectDeterministicSearch<StarmieSearch>();
}

TEST(ParallelBuildTest, CocoaSearchDeterministic) {
  ExpectDeterministicSearch<CocoaSearch>();
}

TEST(ParallelBuildTest, TusSearchDeterministic) {
  ExpectDeterministicSearch<TusSearch>();
}

TEST(ParallelBuildTest, KeywordSearchDeterministic) {
  ExpectDeterministicSearch<KeywordSearch>();
}

TEST(ParallelBuildTest, SantosIndexBytesIdentical) {
  ExpectIdenticalIndexBytes<SantosSearch>("santos_par");
}

TEST(ParallelBuildTest, JosieIndexBytesIdentical) {
  ExpectIdenticalIndexBytes<JosieSearch>("josie_par");
}

/// Rebuilds the shared lake column-major: every table is reconstructed via
/// Table::FromColumns from materialized column vectors. The columnar entry
/// path must be invisible to indexing.
DataLake RebuildLakeFromColumns() {
  DataLake rebuilt;
  for (const Table* t : SharedLake().tables()) {
    std::vector<std::vector<Value>> columns(t->num_columns());
    for (size_t c = 0; c < t->num_columns(); ++c) {
      columns[c] = ColumnMaterialize(t->column(c));
    }
    Result<Table> copy =
        Table::FromColumns(t->name(), t->schema(), columns);
    EXPECT_TRUE(copy.ok());
    EXPECT_TRUE(rebuilt.AddTable(std::move(copy).value()).ok());
  }
  return rebuilt;
}

/// Builds `Algo` over both lake constructions and verifies the persisted
/// index files are byte-identical.
template <typename Algo>
void ExpectIndexBytesInvariantToConstruction(const std::string& tag) {
  DataLake columnar = RebuildLakeFromColumns();
  std::string reference;
  const DataLake* lakes[] = {&SharedLake(), &columnar};
  for (size_t i = 0; i < 2; ++i) {
    Algo algo;
    algo.set_num_threads(1);
    ASSERT_TRUE(algo.BuildIndex(*lakes[i]).ok());
    std::string path =
        testing::TempDir() + "/" + tag + "_" + std::to_string(i) + ".idx";
    ASSERT_TRUE(algo.SaveIndex(path).ok());
    std::string bytes = ReadFileBytes(path);
    std::remove(path.c_str());
    ASSERT_FALSE(bytes.empty());
    if (reference.empty()) {
      reference = std::move(bytes);
    } else {
      EXPECT_EQ(bytes, reference) << "columnar-built lake diverged";
    }
  }
}

TEST(ParallelBuildTest, SantosIndexInvariantToTableConstruction) {
  ExpectIndexBytesInvariantToConstruction<SantosSearch>("santos_col");
}

TEST(ParallelBuildTest, JosieIndexInvariantToTableConstruction) {
  ExpectIndexBytesInvariantToConstruction<JosieSearch>("josie_col");
}

TEST(ParallelBuildTest, DiscoverAllIdenticalAcrossThreadCounts) {
  // End to end through the facade: sequential (1), bounded (8), and
  // hardware (0) must agree on every algorithm's hits.
  const DataLake& lake = SharedLake();
  DiscoveryQuery query{lake.tables().front(), 0, 10};
  std::vector<std::map<std::string, std::vector<DiscoveryHit>>> reports;
  for (size_t threads : {size_t{1}, size_t{8}, size_t{0}}) {
    Dialite dialite(&lake);
    ASSERT_TRUE(dialite.RegisterDefaults().ok());
    dialite.set_num_threads(threads);
    ASSERT_TRUE(dialite.BuildIndexes().ok());
    Result<std::map<std::string, std::vector<DiscoveryHit>>> all =
        dialite.DiscoverAll(query);
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    reports.push_back(std::move(all).value());
  }
  ASSERT_EQ(reports[0].size(), 7u);  // all seven default algorithms ran
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

}  // namespace
}  // namespace dialite
