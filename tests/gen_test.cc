#include <gtest/gtest.h>

#include "gen/query_table_generator.h"

namespace dialite {
namespace {

TEST(QueryTableGeneratorTest, Figure5CovidPrompt) {
  QueryTableGenerator gen;
  auto r = gen.Generate("covid-19 cases", 5, 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Fig. 5: a 5x5 table with Country, Cases, Deaths, Recovered, Active.
  EXPECT_EQ(r->num_rows(), 5u);
  EXPECT_EQ(r->num_columns(), 5u);
  EXPECT_EQ(r->schema().column(0).name, "Country");
  EXPECT_EQ(r->schema().column(1).name, "Cases");
  EXPECT_EQ(r->schema().column(4).name, "Active");
  // Plausibility: cases = deaths + recovered + active.
  for (size_t row = 0; row < r->num_rows(); ++row) {
    EXPECT_EQ(r->at(row, 1).as_int(), r->at(row, 2).as_int() +
                                          r->at(row, 3).as_int() +
                                          r->at(row, 4).as_int());
  }
}

TEST(QueryTableGeneratorTest, DeterministicPerPromptAndSeed) {
  QueryTableGenerator gen;
  auto a = gen.Generate("covid cases", 5, 5);
  auto b = gen.Generate("covid cases", 5, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->SameRowsAs(*b));
  QueryTableGenerator::Params p;
  p.seed = 999;
  QueryTableGenerator other(p);
  auto c = other.Generate("covid cases", 5, 5);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->SameRowsAs(*c));
}

TEST(QueryTableGeneratorTest, TopicRouting) {
  QueryTableGenerator gen;
  EXPECT_EQ(gen.ResolveTopic("table about vaccines"), "vaccines");
  EXPECT_EQ(gen.ResolveTopic("european cities population"), "cities");
  EXPECT_EQ(gen.ResolveTopic("tech company revenue"), "companies");
  EXPECT_EQ(gen.ResolveTopic("flight routes"), "flights");
  EXPECT_EQ(gen.ResolveTopic("football league standings"), "football");
  EXPECT_EQ(gen.ResolveTopic("university students"), "universities");
}

TEST(QueryTableGeneratorTest, UnknownPromptStillAnswers) {
  QueryTableGenerator gen;
  auto r = gen.Generate("xyzzy blorp", 4, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->num_rows(), 0u);
  EXPECT_EQ(r->num_columns(), 3u);
}

TEST(QueryTableGeneratorTest, WidthClipping) {
  QueryTableGenerator gen;
  auto r = gen.Generate("cities of the world", 6, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_columns(), 2u);
  EXPECT_EQ(r->num_rows(), 6u);
  // Requesting more columns than the template has keeps the template width.
  auto r2 = gen.Generate("cities of the world", 6, 99);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->num_columns(), 5u);
}

TEST(QueryTableGeneratorTest, RejectsZeroDimensions) {
  QueryTableGenerator gen;
  EXPECT_FALSE(gen.Generate("covid", 0, 5).ok());
  EXPECT_FALSE(gen.Generate("covid", 5, 0).ok());
}

TEST(QueryTableGeneratorTest, DifferentPromptsDifferentTopicsDiffer) {
  QueryTableGenerator gen;
  auto covid = gen.Generate("covid cases", 5, 5);
  auto clubs = gen.Generate("football clubs", 5, 5);
  ASSERT_TRUE(covid.ok());
  ASSERT_TRUE(clubs.ok());
  EXPECT_NE(covid->schema().ColumnNames(), clubs->schema().ColumnNames());
}

TEST(QueryTableGeneratorTest, AvailableTopicsNonEmpty) {
  EXPECT_GE(QueryTableGenerator::AvailableTopics().size(), 8u);
}

TEST(QueryTableGeneratorTest, MoviesTopic) {
  QueryTableGenerator gen;
  EXPECT_EQ(gen.ResolveTopic("films by director"), "movies");
  auto r = gen.Generate("classic movies", 6, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().column(0).name, "Title");
  EXPECT_EQ(r->schema().column(1).name, "Director");
  EXPECT_EQ(r->num_rows(), 6u);
}

}  // namespace
}  // namespace dialite
