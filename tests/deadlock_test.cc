// Tests for the DIALITE_DEBUG_SYNC lock-order deadlock detector: an ABBA
// inversion must abort with BOTH lock names the first time both orders have
// executed (no racy interleaving needed), while consistent orderings and
// try-locks must stay silent. Without -DDIALITE_DEBUG_SYNC=ON the detector
// is compiled out entirely, so these tests skip.

#include "common/sync.h"

#include <gtest/gtest.h>

namespace dialite {
namespace {

// Acquires first then second, then releases both — one observed ordering
// edge (first → second) in the debug-sync order graph.
void AcquireInOrder(Mutex& first, Mutex& second) {
  first.Lock();
  second.Lock();
  second.Unlock();
  first.Unlock();
}

#if defined(DIALITE_DEBUG_SYNC)

using DeadlockDeathTest = ::testing::Test;

TEST(DeadlockDeathTest, AbbaInversionAbortsWithBothLockNames) {
  // Death tests re-run the statement in a forked child, so the order graph
  // edges recorded there do not leak into this (parent) process.
  EXPECT_DEATH(
      {
        Mutex a("DeadlockTest::LockA");
        Mutex b("DeadlockTest::LockB");
        AcquireInOrder(a, b);  // establishes LockA -> LockB
        AcquireInOrder(b, a);  // reverse order: must abort, not deadlock
      },
      "lock-order inversion.*'DeadlockTest::LockB' and 'DeadlockTest::LockA'");
}

TEST(DeadlockDeathTest, LongerCycleIsCaughtToo) {
  // A -> B and B -> C are fine individually; C -> A closes a 3-cycle.
  EXPECT_DEATH(
      {
        Mutex a("DeadlockTest::CycleA");
        Mutex b("DeadlockTest::CycleB");
        Mutex c("DeadlockTest::CycleC");
        AcquireInOrder(a, b);
        AcquireInOrder(b, c);
        AcquireInOrder(c, a);
      },
      "lock-order inversion.*'DeadlockTest::CycleC' and "
      "'DeadlockTest::CycleA'");
}

TEST(DeadlockTest, ConsistentOrderStaysSilent) {
  Mutex a("DeadlockTest::SilentA");
  Mutex b("DeadlockTest::SilentB");
  Mutex c("DeadlockTest::SilentC");
  for (int i = 0; i < 3; ++i) {
    AcquireInOrder(a, b);
    AcquireInOrder(b, c);
    AcquireInOrder(a, c);
  }
}

TEST(DeadlockTest, TryLockAgainstTheOrderDoesNotPoisonTheGraph) {
  Mutex a("DeadlockTest::TryA");
  Mutex b("DeadlockTest::TryB");
  AcquireInOrder(a, b);  // order is A -> B
  // Taking B then *try*-locking A is deadlock-free by construction (a
  // failed try backs off instead of blocking), so it must not record a
  // B -> A edge — and the A -> B reacquire right after must not abort.
  b.Lock();
  const bool got = a.TryLock();
  if (got) a.Unlock();
  b.Unlock();
  EXPECT_TRUE(got);
  AcquireInOrder(a, b);
}

TEST(DeadlockTest, SameNameReacquireIsNotACycle) {
  // Two *instances* sharing one name are one order-graph node; CondVar
  // release/reacquire and per-object mutexes rely on the self-edge being
  // skipped rather than reported as a length-zero cycle.
  Mutex outer("DeadlockTest::SharedName");
  Mutex inner("DeadlockTest::SharedName");
  outer.Lock();
  inner.Lock();
  inner.Unlock();
  outer.Unlock();
}

#else  // !DIALITE_DEBUG_SYNC

TEST(DeadlockTest, DetectorCompiledOut) {
  // Release builds must run both orders without any tracking or abort (and
  // the sizeof static_asserts in sync.h pin the zero-overhead claim).
  Mutex a("DeadlockTest::ReleaseA");
  Mutex b("DeadlockTest::ReleaseB");
  AcquireInOrder(a, b);
  AcquireInOrder(b, a);
  GTEST_SKIP() << "lock-order detector requires -DDIALITE_DEBUG_SYNC=ON";
}

#endif  // DIALITE_DEBUG_SYNC

}  // namespace
}  // namespace dialite
