/// Tests for offline-index persistence (SANTOS and JOSIE save/load).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "discovery/josie.h"
#include "discovery/persist.h"
#include "discovery/santos.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(PersistEscapeTest, RoundTripsSpecials) {
  const std::string cases[] = {"plain", "with\nnewline", "back\\slash",
                               "cr\rchar", "", "mix\\n\n\\"};
  for (const std::string& s : cases) {
    EXPECT_EQ(UnescapeIndexLine(EscapeIndexLine(s)), s) << s;
  }
  // Escaped form never contains a raw newline.
  EXPECT_EQ(EscapeIndexLine("a\nb").find('\n'), std::string::npos);
}

TEST(JosiePersistTest, SaveLoadGivesIdenticalResults) {
  DataLake lake = paper::MakeDemoLake(12);
  JosieSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path = TempPath("josie.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());

  JosieSearch loaded;
  ASSERT_TRUE(loaded.LoadIndex(path, lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 10};
  auto h1 = original.Search(q);
  auto h2 = loaded.Search(q);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  ASSERT_EQ(h1->size(), h2->size());
  for (size_t i = 0; i < h1->size(); ++i) {
    EXPECT_EQ((*h1)[i].table_name, (*h2)[i].table_name);
    EXPECT_DOUBLE_EQ((*h1)[i].score, (*h2)[i].score);
  }
  std::remove(path.c_str());
}

TEST(JosiePersistTest, LoadRejectsMissingTable) {
  DataLake lake = paper::MakeDemoLake(0);
  JosieSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path = TempPath("josie_missing.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());
  DataLake other;  // empty lake
  JosieSearch loaded;
  Status s = loaded.LoadIndex(path, other);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(JosiePersistTest, LoadRejectsGarbage) {
  std::string path = TempPath("josie_garbage.idx");
  {
    std::ofstream out(path);
    out << "not an index\n";
  }
  DataLake lake = paper::MakeDemoLake(0);
  JosieSearch loaded;
  EXPECT_EQ(loaded.LoadIndex(path, lake).code(), StatusCode::kParseError);
  EXPECT_FALSE(loaded.LoadIndex("/nonexistent/no.idx", lake).ok());
  std::remove(path.c_str());
}

TEST(SantosPersistTest, SaveLoadGivesIdenticalResults) {
  DataLake lake = paper::MakeDemoLake(12);
  SantosSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path = TempPath("santos.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());

  SantosSearch loaded;
  ASSERT_TRUE(loaded.LoadIndex(path, lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 10};
  auto h1 = original.Search(q);
  auto h2 = loaded.Search(q);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok()) << h2.status().ToString();
  ASSERT_EQ(h1->size(), h2->size());
  for (size_t i = 0; i < h1->size(); ++i) {
    EXPECT_EQ((*h1)[i].table_name, (*h2)[i].table_name);
    EXPECT_NEAR((*h1)[i].score, (*h2)[i].score, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(SantosPersistTest, LoadedIndexStillRanksT2First) {
  DataLake lake = paper::MakeDemoLake(12);
  SantosSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path = TempPath("santos2.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());
  SantosSearch loaded;
  ASSERT_TRUE(loaded.LoadIndex(path, lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 5};
  auto hits = loaded.Search(q);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ((*hits)[0].table_name, "T2");
  std::remove(path.c_str());
}

TEST(SantosPersistTest, LoadRejectsBadHeader) {
  std::string path = TempPath("santos_bad.idx");
  {
    std::ofstream out(path);
    out << "dialite-josie-index v1\n";  // wrong kind
  }
  DataLake lake = paper::MakeDemoLake(0);
  SantosSearch loaded;
  EXPECT_EQ(loaded.LoadIndex(path, lake).code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dialite
