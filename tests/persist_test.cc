/// Tests for offline-index persistence (the binary SaveIndex/LoadIndex
/// container flow shared by every PersistentIndex algorithm; the snapshot
/// container itself is covered in snapshot_test.cc).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "discovery/josie.h"
#include "discovery/santos.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(JosiePersistTest, SaveLoadGivesIdenticalResults) {
  DataLake lake = paper::MakeDemoLake(12);
  JosieSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path = TempPath("josie.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());

  JosieSearch loaded;
  ASSERT_TRUE(loaded.LoadIndex(path, lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 10};
  auto h1 = original.Search(q);
  auto h2 = loaded.Search(q);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  ASSERT_EQ(h1->size(), h2->size());
  for (size_t i = 0; i < h1->size(); ++i) {
    EXPECT_EQ((*h1)[i].table_name, (*h2)[i].table_name);
    EXPECT_DOUBLE_EQ((*h1)[i].score, (*h2)[i].score);
  }
  std::remove(path.c_str());
}

TEST(JosiePersistTest, SaveLoadSaveIsByteIdentical) {
  DataLake lake = paper::MakeDemoLake(12);
  JosieSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path1 = TempPath("josie_rt1.idx");
  std::string path2 = TempPath("josie_rt2.idx");
  ASSERT_TRUE(original.SaveIndex(path1).ok());
  JosieSearch loaded;
  ASSERT_TRUE(loaded.LoadIndex(path1, lake).ok());
  ASSERT_TRUE(loaded.SaveIndex(path2).ok());
  EXPECT_EQ(ReadFile(path1), ReadFile(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(JosiePersistTest, LoadRejectsMissingTable) {
  DataLake lake = paper::MakeDemoLake(0);
  JosieSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path = TempPath("josie_missing.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());
  DataLake other;  // empty lake
  JosieSearch loaded;
  Status s = loaded.LoadIndex(path, other);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(JosiePersistTest, LoadRejectsGarbage) {
  std::string path = TempPath("josie_garbage.idx");
  {
    std::ofstream out(path);
    // The removed line-oriented text format: stale caches from older
    // builds must fail parse (the facade then rebuilds), never crash.
    out << "dialite-josie-index v1\n";
  }
  DataLake lake = paper::MakeDemoLake(0);
  JosieSearch loaded;
  EXPECT_EQ(loaded.LoadIndex(path, lake).code(), StatusCode::kParseError);
  EXPECT_FALSE(loaded.LoadIndex("/nonexistent/no.idx", lake).ok());
  std::remove(path.c_str());
}

TEST(SantosPersistTest, SaveLoadGivesIdenticalResults) {
  DataLake lake = paper::MakeDemoLake(12);
  SantosSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path = TempPath("santos.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());

  SantosSearch loaded;
  ASSERT_TRUE(loaded.LoadIndex(path, lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 10};
  auto h1 = original.Search(q);
  auto h2 = loaded.Search(q);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok()) << h2.status().ToString();
  ASSERT_EQ(h1->size(), h2->size());
  for (size_t i = 0; i < h1->size(); ++i) {
    EXPECT_EQ((*h1)[i].table_name, (*h2)[i].table_name);
    // Confidences round-trip as exact f64 bits, so scores match exactly.
    EXPECT_DOUBLE_EQ((*h1)[i].score, (*h2)[i].score);
  }
  std::remove(path.c_str());
}

TEST(SantosPersistTest, SaveLoadSaveIsByteIdentical) {
  DataLake lake = paper::MakeDemoLake(12);
  SantosSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path1 = TempPath("santos_rt1.idx");
  std::string path2 = TempPath("santos_rt2.idx");
  ASSERT_TRUE(original.SaveIndex(path1).ok());
  SantosSearch loaded;
  ASSERT_TRUE(loaded.LoadIndex(path1, lake).ok());
  ASSERT_TRUE(loaded.SaveIndex(path2).ok());
  EXPECT_EQ(ReadFile(path1), ReadFile(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(SantosPersistTest, LoadedIndexStillRanksT2First) {
  DataLake lake = paper::MakeDemoLake(12);
  SantosSearch original;
  ASSERT_TRUE(original.BuildIndex(lake).ok());
  std::string path = TempPath("santos2.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());
  SantosSearch loaded;
  ASSERT_TRUE(loaded.LoadIndex(path, lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 5};
  auto hits = loaded.Search(q);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ((*hits)[0].table_name, "T2");
  std::remove(path.c_str());
}

TEST(SantosPersistTest, LoadRejectsWrongAlgorithmPayload) {
  DataLake lake = paper::MakeDemoLake(0);
  JosieSearch josie;
  ASSERT_TRUE(josie.BuildIndex(lake).ok());
  std::string path = TempPath("santos_bad.idx");
  ASSERT_TRUE(josie.SaveIndex(path).ok());  // valid container, wrong payload
  SantosSearch loaded;
  EXPECT_EQ(loaded.LoadIndex(path, lake).code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dialite
