// Unit tests for the dialite_analyze frame (tools/analyze): the lexer's
// trap cases, the declaration parser, and the call/include graphs. These
// run under `ctest -L analysis` next to the tree gate and the fixture
// self-test.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include <cstdio>
#include <fstream>

#include "analyze/callgraph.h"
#include "analyze/cfg.h"
#include "analyze/checks.h"
#include "analyze/dataflow.h"
#include "analyze/decls.h"
#include "analyze/lexer.h"
#include "analyze/policy.h"
#include "analyze/report.h"

namespace dialite {
namespace analyze {
namespace {

std::vector<std::string> TokenTexts(const LexedFile& lexed) {
  std::vector<std::string> out;
  for (const Token& t : lexed.tokens) out.push_back(t.text);
  return out;
}

// ------------------------------------------------------------------ lexer

TEST(LexerTest, RawStringContentsNeverTokenize) {
  // The payload contains comment openers, braces, a fake loop and a fake
  // call — none of it may leak into the token stream.
  const std::string src =
      "const char* q = R\"sql(for (;;) { Score(/* hi */); })sql\";\n"
      "int after = 1;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  for (const std::string& t : texts) {
    EXPECT_NE(t, "for");
    EXPECT_NE(t, "Score");
  }
  // The literal collapses to one string token and the file goes on.
  EXPECT_NE(std::find(texts.begin(), texts.end(), "\"\""), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "after"), texts.end());
}

TEST(LexerTest, RawStringEncodingPrefixes) {
  const std::string src =
      "auto a = u8R\"(x { y)\";\n"
      "auto b = LR\"d(} /* z)d\";\n"
      "int tail = 2;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "{"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "}"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "tail"), texts.end());
}

TEST(LexerTest, LineContinuationMacroEmitsNoTokens) {
  // The whole #define is one preprocessor logical line across splices;
  // sleep_for must not appear as a token, and the line counter must still
  // advance so `after` is stamped with its real line.
  const std::string src =
      "#define NAP()     \\\n"
      "  do {            \\\n"
      "    sleep_for(1); \\\n"
      "  } while (0)\n"
      "int after = 1;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "sleep_for"), texts.end());
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens.front().text, "int");
  EXPECT_EQ(lexed.tokens.front().line, 5);
}

TEST(LexerTest, SpliceInsideIdentifierAndString) {
  // Translation phase 2: the splice joins physical lines before
  // tokenization, so an identifier (or string) can straddle lines.
  const std::string src = "int spli\\\nced = 0;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "spliced"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "spli"), texts.end());
}

TEST(LexerTest, BlockCommentsDoNotNest) {
  // The first */ closes the comment even after an inner /* — so `live`
  // must tokenize and `dead` (inside the comment) must not.
  const std::string src =
      "/* outer /* looks nested */ int live = 1;\n"
      "/* int dead = 2;\n"
      "   still the same comment */ int live2 = 3;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "live"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "live2"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "dead"), texts.end());
}

TEST(LexerTest, WaiversCoverOwnAndNextLine) {
  const std::string src =
      "// analyze: no-cancel(bounded by construction)\n"
      "int covered = 1;\n"
      "int uncovered = 2;\n"
      "int waived_inline = 3;  // dialite-lint: allow(naked-thread)\n";
  LexedFile lexed = Lex("t.cc", src);
  EXPECT_TRUE(HasWaiver(lexed, "no-cancel", 1));
  EXPECT_TRUE(HasWaiver(lexed, "no-cancel", 2));
  EXPECT_FALSE(HasWaiver(lexed, "no-cancel", 3));
  EXPECT_FALSE(HasWaiver(lexed, "allow-blocking", 2));
  EXPECT_TRUE(HasLintWaiver(lexed, "naked-thread", 4));
  EXPECT_FALSE(HasLintWaiver(lexed, "raw-socket", 4));
}

TEST(LexerTest, IncludesRecordedWithSystemFlag) {
  const std::string src =
      "#include \"analyze/lexer.h\"\n"
      "#include <vector>\n";
  LexedFile lexed = Lex("t.cc", src);
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0].path, "analyze/lexer.h");
  EXPECT_FALSE(lexed.includes[0].system);
  EXPECT_EQ(lexed.includes[1].path, "vector");
  EXPECT_TRUE(lexed.includes[1].system);
}

// ----------------------------------------------------------------- parser

TEST(DeclsTest, MembersGuardsAndLoops) {
  const std::string src =
      "namespace outer {\n"
      "class Cache {\n"
      " public:\n"
      "  int Total(int n) {\n"
      "    int sum = 0;\n"
      "    for (int i = 0; i < n; ++i) sum += i;\n"
      "    return sum;\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int hits_ GUARDED_BY(mu_);\n"
      "  int misses_;\n"
      "  static int limit_;\n"
      "  const int cap_ = 4;\n"
      "};\n"
      "}  // namespace outer\n";
  ParsedFile pf = Parse(Lex("t.h", src));
  ASSERT_EQ(pf.classes.size(), 1u);
  const ClassInfo& cls = pf.classes[0];
  EXPECT_EQ(cls.qual_name, "outer::Cache");
  ASSERT_EQ(cls.members.size(), 5u);
  EXPECT_EQ(cls.members[0].name, "mu_");
  EXPECT_TRUE(cls.members[1].guarded);
  EXPECT_FALSE(cls.members[2].guarded);
  EXPECT_TRUE(cls.members[3].is_static);
  EXPECT_TRUE(cls.members[4].is_const);
  // The method parsed as a function with one loop, and its qualified name
  // carries both the namespace and the class.
  ASSERT_EQ(pf.functions.size(), 1u);
  EXPECT_EQ(pf.functions[0].qual_name, "outer::Cache::Total");
  EXPECT_EQ(pf.functions[0].loops.size(), 1u);
}

TEST(DeclsTest, NestedStructMembersAreAudited) {
  // Regression: members of a struct nested inside a class must be reported
  // under the inner class, and template-argument const must not mark the
  // member itself const (shared_ptr<const T> is mutable).
  const std::string src =
      "class Outer {\n"
      " public:\n"
      "  struct Entry {\n"
      "    shared_ptr<const Foo> token_sets;\n"
      "    Mutex mu{\"x\"};\n"
      "    int hits GUARDED_BY(mu);\n"
      "  };\n"
      "};\n";
  ParsedFile pf = Parse(Lex("t.h", src));
  ASSERT_EQ(pf.classes.size(), 2u);  // Entry closes (and reports) first
  const ClassInfo& entry = pf.classes[0];
  EXPECT_EQ(entry.qual_name, "Outer::Entry");
  ASSERT_EQ(entry.members.size(), 3u);
  EXPECT_EQ(entry.members[0].name, "token_sets");
  EXPECT_FALSE(entry.members[0].is_const);
  EXPECT_FALSE(entry.members[0].is_reference);
  EXPECT_EQ(entry.members[1].name, "mu");
  EXPECT_TRUE(entry.members[2].guarded);
}

TEST(DeclsTest, PointerConstnessBindsAfterLastStar) {
  const std::string src =
      "class C {\n"
      "  const Obs* obs_;\n"        // pointee const, member mutable
      "  Obs* const fixed_;\n"      // member const
      "  Obs& ref_;\n"              // reference member
      "};\n";
  ParsedFile pf = Parse(Lex("t.h", src));
  ASSERT_EQ(pf.classes.size(), 1u);
  ASSERT_EQ(pf.classes[0].members.size(), 3u);
  EXPECT_FALSE(pf.classes[0].members[0].is_const);
  EXPECT_TRUE(pf.classes[0].members[1].is_const);
  EXPECT_TRUE(pf.classes[0].members[2].is_reference);
}

// ------------------------------------------------------------ call graph

ParsedFile ParseSource(const std::string& path, const std::string& src) {
  return Parse(Lex(path, src));
}

TEST(CallGraphTest, ReachabilityStopsAtStopPatterns) {
  std::vector<ParsedFile> files;
  files.push_back(ParseSource(
      "a.cc",
      "void Leaf() {}\n"
      "void Admin() { Leaf(); }\n"
      "void Handle() { Admin(); Direct(); }\n"
      "void Direct() {}\n"
      "void Unreached() { Leaf(); }\n"));
  Project project = Project::Build(std::move(files));
  CallGraph graph(project);
  auto names = [&](const std::vector<size_t>& ids) {
    std::vector<std::string> out;
    for (size_t id : ids) out.push_back(project.fn(id).simple_name);
    return out;
  };
  // Without stops: Handle -> Admin -> Leaf plus Direct.
  std::vector<std::string> all = names(graph.Reachable({"Handle"}, {}));
  EXPECT_NE(std::find(all.begin(), all.end(), "Leaf"), all.end());
  EXPECT_EQ(std::find(all.begin(), all.end(), "Unreached"), all.end());
  // With Admin stopped, neither Admin nor its callee Leaf is audited.
  std::vector<std::string> stopped =
      names(graph.Reachable({"Handle"}, {"Admin"}));
  EXPECT_EQ(std::find(stopped.begin(), stopped.end(), "Admin"), stopped.end());
  EXPECT_EQ(std::find(stopped.begin(), stopped.end(), "Leaf"), stopped.end());
  EXPECT_NE(std::find(stopped.begin(), stopped.end(), "Direct"),
            stopped.end());
}

TEST(CallGraphTest, QualifiedPatternsMatchOnBoundary) {
  FunctionInfo fn;
  fn.simple_name = "Handle";
  fn.qual_name = "dialite::DialiteServer::Handle";
  EXPECT_TRUE(CallGraph::Matches(fn, "Handle"));
  EXPECT_TRUE(CallGraph::Matches(fn, "DialiteServer::Handle"));
  EXPECT_TRUE(CallGraph::Matches(fn, "dialite::DialiteServer::Handle"));
  // Suffix matches must respect the :: boundary — no substring tricks.
  EXPECT_FALSE(CallGraph::Matches(fn, "Server::Handle"));
  EXPECT_FALSE(CallGraph::Matches(fn, "andle"));
}

// --------------------------------------------------------- include graph

TEST(IncludeGraphTest, FindsCycleAndIgnoresSystemIncludes) {
  std::vector<ParsedFile> acyclic;
  acyclic.push_back(ParseSource("src/a.h", "#include \"b.h\"\n"
                                           "#include <vector>\n"));
  acyclic.push_back(ParseSource("src/b.h", "#include <string>\n"));
  Project ok = Project::Build(std::move(acyclic));
  EXPECT_TRUE(IncludeGraph(ok).FindCycle().empty());

  std::vector<ParsedFile> cyclic;
  cyclic.push_back(ParseSource("src/a.h", "#include \"b.h\"\n"));
  cyclic.push_back(ParseSource("src/b.h", "#include \"c.h\"\n"));
  cyclic.push_back(ParseSource("src/c.h", "#include \"a.h\"\n"));
  Project bad = Project::Build(std::move(cyclic));
  std::vector<std::string> cycle = IncludeGraph(bad).FindCycle();
  ASSERT_GE(cycle.size(), 2u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

// ------------------------------------------------------- data-flow engine

/// The fixture-grade policy the data-flow tests share.
Policy TestPolicy() {
  Policy p;
  p.seeds = {"Handle"};
  p.hot = {"Score"};
  p.cancel_polls = {"Cancelled"};
  p.blocking = {"sleep_for"};
  p.lock_guards = {"MutexLock"};
  p.status_types = {"Status"};
  p.alloc_fns = {"push_back"};
  p.alloc_types = {"string"};
  p.view_types = {"ColumnView"};
  p.defer = {"Submit"};
  return p;
}

std::vector<Finding> RunOn(const std::string& src) {
  std::vector<ParsedFile> files;
  files.push_back(ParseSource("t.cc", src));
  Project project = Project::Build(std::move(files));
  return RunChecks(project, TestPolicy());
}

size_t CountCheck(const std::vector<Finding>& fs, const std::string& check) {
  size_t n = 0;
  for (const Finding& f : fs) {
    if (f.check == check) ++n;
  }
  return n;
}

TEST(CfgTest, EventStreamCoversLocksAllocsViewsAndScopes) {
  Policy policy = TestPolicy();
  ParsedFile pf = ParseSource(
      "t.cc",
      "void F() {\n"
      "  MutexLock lock(mu_);\n"
      "  {\n"
      "    string tmp(4, 'x');\n"
      "    items.push_back(tmp);\n"
      "  }\n"
      "  ColumnView view = Slice();\n"
      "  auto task = [view]() { return view; };\n"
      "}\n");
  ASSERT_EQ(pf.functions.size(), 1u);
  FunctionCfg cfg = BuildCfg(pf, pf.functions[0], policy);
  auto count = [&](CfgNode::Kind kind) {
    size_t n = 0;
    for (const CfgNode& node : cfg.nodes) {
      if (node.kind == kind) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(CfgNode::Kind::kLockAcquire), 1u);
  // string construction + push_back call.
  EXPECT_EQ(count(CfgNode::Kind::kAlloc), 2u);
  EXPECT_EQ(count(CfgNode::Kind::kViewDecl), 1u);
  EXPECT_EQ(count(CfgNode::Kind::kLambda), 1u);
  // Inner block open/close; the lambda body braces add another pair.
  EXPECT_GE(count(CfgNode::Kind::kScopeOpen), 2u);
  EXPECT_EQ(count(CfgNode::Kind::kScopeOpen),
            count(CfgNode::Kind::kScopeClose));
  // The guard variable name rides in the acquire event.
  for (const CfgNode& node : cfg.nodes) {
    if (node.kind == CfgNode::Kind::kLockAcquire) {
      EXPECT_EQ(node.text, "MutexLock");
      EXPECT_EQ(node.detail, "lock");
    }
  }
}

TEST(DataFlowTest, SummariesPropagateAcrossCallGraph) {
  std::vector<ParsedFile> files;
  files.push_back(ParseSource(
      "t.cc",
      "void Deep() { sleep_for(1); }\n"
      "void Mid() { Deep(); }\n"
      "void Top() { Mid(); }\n"
      "void Grow(int n) { items.push_back(n); }\n"
      "Status Load() { return Status(); }\n"
      "void Quiet() {}\n"));
  Project project = Project::Build(std::move(files));
  CallGraph graph(project);
  DataFlow flow(project, graph, TestPolicy());
  EXPECT_TRUE(flow.converged());
  EXPECT_TRUE(flow.NameMayBlock("Deep"));
  EXPECT_TRUE(flow.NameMayBlock("Mid"));
  EXPECT_TRUE(flow.NameMayBlock("Top"));
  EXPECT_FALSE(flow.NameMayBlock("Quiet"));
  EXPECT_TRUE(flow.NameMayAlloc("Grow"));
  EXPECT_FALSE(flow.NameMayAlloc("Deep"));
  EXPECT_TRUE(flow.NameReturnsStatus("Load"));
  EXPECT_FALSE(flow.NameReturnsStatus("Quiet"));
  // The witness chain walks caller -> callee -> terminal fact.
  const std::string chain = flow.BlockChain("Top");
  EXPECT_NE(chain.find("Top"), std::string::npos);
  EXPECT_NE(chain.find("sleep_for"), std::string::npos);
}

TEST(DataFlowTest, ReturnsStatusNeedsEveryDefinitionToAgree) {
  // Two functions share the name Load; only one returns Status, so the
  // name must NOT count as status-returning (a collision would otherwise
  // flag unrelated helpers).
  std::vector<ParsedFile> files;
  files.push_back(ParseSource("a.cc", "Status Load() { return Status(); }\n"));
  files.push_back(ParseSource("b.cc", "void Load() {}\n"));
  Project project = Project::Build(std::move(files));
  CallGraph graph(project);
  DataFlow flow(project, graph, TestPolicy());
  EXPECT_FALSE(flow.NameReturnsStatus("Load"));
}

// ----------------------------------------------------- data-flow checks

TEST(ChecksTest, LockBlockingIsFlowSensitiveAndTransitive) {
  // Transitive reach while the guard is live: fires.
  std::vector<Finding> bad = RunOn(
      "void Save() { sleep_for(5); }\n"
      "void Flush() {\n"
      "  MutexLock lock(mu_);\n"
      "  Save();\n"
      "}\n");
  EXPECT_EQ(CountCheck(bad, "lock-blocking"), 1u);
  // Same call after the guard's scope closes: silent.
  std::vector<Finding> good = RunOn(
      "void Save() { sleep_for(5); }\n"
      "void Flush() {\n"
      "  {\n"
      "    MutexLock lock(mu_);\n"
      "    dirty_ = false;\n"
      "  }\n"
      "  Save();\n"
      "}\n");
  EXPECT_EQ(CountCheck(good, "lock-blocking"), 0u);
}

TEST(ChecksTest, StatusDropCatchesBindingAndBareCall) {
  std::vector<Finding> bound = RunOn(
      "Status Load() { return Status(); }\n"
      "int Handle() {\n"
      "  Status st = Load();\n"
      "  return 1;\n"
      "}\n");
  EXPECT_EQ(CountCheck(bound, "status-drop"), 1u);
  std::vector<Finding> bare = RunOn(
      "Status Load() { return Status(); }\n"
      "void Handle() { Load(); }\n");
  EXPECT_EQ(CountCheck(bare, "status-drop"), 1u);
  std::vector<Finding> consulted = RunOn(
      "Status Load() { return Status(); }\n"
      "int Handle() {\n"
      "  Status st = Load();\n"
      "  if (!st.ok()) return -1;\n"
      "  return 1;\n"
      "}\n");
  EXPECT_EQ(CountCheck(consulted, "status-drop"), 0u);
}

TEST(ChecksTest, HotAllocIsANoteAndRequiresHotLoop) {
  std::vector<Finding> hot = RunOn(
      "bool Cancelled();\n"
      "int Handle(int n) {\n"
      "  int total = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (Cancelled()) return total;\n"
      "    string row(4, 'x');\n"
      "    total += row.size();\n"
      "  }\n"
      "  return total;\n"
      "}\n");
  ASSERT_EQ(CountCheck(hot, "hot-alloc"), 1u);
  for (const Finding& f : hot) {
    if (f.check == "hot-alloc") {
      EXPECT_EQ(f.severity, Finding::Severity::kNote);
    }
  }
  // A cold loop (not request-reachable) allocating is not inventory.
  std::vector<Finding> cold = RunOn(
      "bool Cancelled();\n"
      "int Offline(int n) {\n"
      "  int total = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (Cancelled()) return total;\n"
      "    string row(4, 'x');\n"
      "    total += row.size();\n"
      "  }\n"
      "  return total;\n"
      "}\n");
  EXPECT_EQ(CountCheck(cold, "hot-alloc"), 0u);
}

TEST(ChecksTest, ViewReturnFlagsReturnsAndDeferredCaptures) {
  std::vector<Finding> ret = RunOn(
      "ColumnView Slice() {\n"
      "  ColumnView v;\n"
      "  return v;\n"
      "}\n");
  EXPECT_EQ(CountCheck(ret, "view-return"), 1u);
  std::vector<Finding> defer = RunOn(
      "void Fanout() {\n"
      "  ColumnView rows = Snapshot();\n"
      "  Submit([rows]() { Use(rows); });\n"
      "}\n");
  EXPECT_EQ(CountCheck(defer, "view-return"), 1u);
  std::vector<Finding> owned = RunOn(
      "void Fanout() {\n"
      "  OwnedColumn rows = Materialize();\n"
      "  Submit([rows]() { Use(rows); });\n"
      "}\n");
  EXPECT_EQ(CountCheck(owned, "view-return"), 0u);
}

// ------------------------------------------------------- waiver grammar

TEST(WaiverTest, SplicedWaiverCommentCoversTheNextCodeLine) {
  // The backslash splices the waiver comment onto line 6 (translation
  // phase 2: the // comment continues), so the comment ENDS on line 6 and
  // "this line plus the next" must cover the loop on line 7 — anchoring
  // the waiver at the comment's start line would miss it.
  std::vector<Finding> fs = RunOn(
      "int Score(int x);\n"
      "bool Cancelled();\n"
      "int Handle(int n) {\n"
      "  int total = 0;\n"
      "  // analyze: no-cancel(offline rebuild loop) \\\n"
      "     bounded by the catalog page size\n"
      "  for (int i = 0; i < n; ++i) total += Score(i);\n"
      "  return total;\n"
      "}\n");
  EXPECT_EQ(CountCheck(fs, "no-cancel"), 0u);
  EXPECT_EQ(CountCheck(fs, "stale-waiver"), 0u);
}

TEST(WaiverTest, MultipleDirectivesInOneComment) {
  // One comment carries two directives; both must register and both must
  // suppress their checks on the next line.
  std::vector<Finding> fs = RunOn(
      "int Score(int x);\n"
      "int Handle(int n) {\n"
      "  int total = 0;\n"
      "  // analyze: no-cancel(tiny bound) analyze: hot-alloc(tiny bound)\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    string row(4, 'x');\n"
      "    total += Score(i) + row.size();\n"
      "  }\n"
      "  return total;\n"
      "}\n");
  EXPECT_EQ(CountCheck(fs, "no-cancel"), 0u);
  EXPECT_EQ(CountCheck(fs, "hot-alloc"), 0u);
  EXPECT_EQ(CountCheck(fs, "stale-waiver"), 0u);
}

TEST(WaiverTest, StaleWaiverReportedAsWarning) {
  // The waiver's check never fires here, so the waiver itself is flagged.
  std::vector<Finding> fs = RunOn(
      "int Quiet(int n) {\n"
      "  // analyze: no-cancel(left over from a deleted loop)\n"
      "  return n;\n"
      "}\n");
  ASSERT_EQ(CountCheck(fs, "stale-waiver"), 1u);
  for (const Finding& f : fs) {
    if (f.check == "stale-waiver") {
      EXPECT_EQ(f.severity, Finding::Severity::kWarning);
    }
  }
  // Unknown directives are called out too.
  std::vector<Finding> unknown = RunOn(
      "void F() {\n"
      "  // analyze: no-such-check(oops)\n"
      "}\n");
  EXPECT_EQ(CountCheck(unknown, "stale-waiver"), 1u);
}

// ------------------------------------------------------- policy loading

std::string WriteTempPolicy(const std::string& name,
                            const std::string& body) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

TEST(PolicyTest, MalformedDirectivesAreHardErrorsWithFileLine) {
  Policy policy;
  std::string error;

  const std::string junk =
      WriteTempPolicy("junk.txt", "seed Handle\nblocking sleep_for now\n");
  EXPECT_FALSE(LoadPolicy(junk, &policy, &error));
  EXPECT_NE(error.find("junk.txt:2"), std::string::npos) << error;
  EXPECT_NE(error.find("blocking sleep_for now"), std::string::npos) << error;

  const std::string unknown =
      WriteTempPolicy("unknown.txt", "sede Handle\n");
  EXPECT_FALSE(LoadPolicy(unknown, &policy, &error));
  EXPECT_NE(error.find("unknown.txt:1"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown directive"), std::string::npos) << error;

  const std::string missing = WriteTempPolicy("missing.txt", "hot\n");
  EXPECT_FALSE(LoadPolicy(missing, &policy, &error));
  EXPECT_NE(error.find("missing.txt:1"), std::string::npos) << error;

  const std::string good = WriteTempPolicy(
      "good.txt", "# comment\nseed Handle\nexempt blocking src/server/net.\n");
  EXPECT_TRUE(LoadPolicy(good, &policy, &error)) << error;
  ASSERT_EQ(policy.seeds.size(), 1u);
  EXPECT_TRUE(policy.IsExempt("blocking", "src/server/net.cc"));
}

// ------------------------------------------------------------- reporting

TEST(ReportTest, BaselineRoundTripAndDiff) {
  std::vector<Finding> findings;
  findings.push_back({"a.cc", 3, "hot-alloc", "msg \"quoted\"",
                      Finding::Severity::kNote});
  findings.push_back({"b.cc", 7, "lock-blocking", "held across IO"});
  const std::string text = FindingsToBaseline(findings);
  std::vector<BaselineEntry> loaded;
  std::string error;
  ASSERT_TRUE(LoadBaseline(text, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].message, "msg \"quoted\"");

  // Identical findings: nothing fresh, nothing stale.
  BaselineDiff same = DiffBaseline(findings, loaded);
  EXPECT_TRUE(same.fresh.empty());
  EXPECT_TRUE(same.stale.empty());

  // A new finding is fresh; a fixed one is stale. Lines do NOT key the
  // diff — drifting a finding by a line keeps it baselined.
  std::vector<Finding> next;
  next.push_back({"a.cc", 99, "hot-alloc", "msg \"quoted\"",
                  Finding::Severity::kNote});
  next.push_back({"c.cc", 1, "status-drop", "dropped"});
  BaselineDiff diff = DiffBaseline(next, loaded);
  ASSERT_EQ(diff.fresh.size(), 1u);
  EXPECT_EQ(diff.fresh[0].file, "c.cc");
  ASSERT_EQ(diff.stale.size(), 1u);
  EXPECT_EQ(diff.stale[0].file, "b.cc");

  std::vector<BaselineEntry> rejected;
  EXPECT_FALSE(LoadBaseline("not json", &rejected, &error));
  EXPECT_NE(error.find("baseline parse error"), std::string::npos);
}

TEST(ReportTest, SarifCarriesRulesSeveritiesAndLocations) {
  std::vector<Finding> findings;
  findings.push_back({"src/a.cc", 12, "lock-blocking", "held"});
  findings.push_back({"src/b.cc", 9, "hot-alloc", "alloc",
                      Finding::Severity::kNote});
  const std::string sarif = FindingsToSarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"dialite_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lock-blocking\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"note\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/b.cc\""), std::string::npos);
}

}  // namespace
}  // namespace analyze
}  // namespace dialite
