// Unit tests for the dialite_analyze frame (tools/analyze): the lexer's
// trap cases, the declaration parser, and the call/include graphs. These
// run under `ctest -L analysis` next to the tree gate and the fixture
// self-test.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/callgraph.h"
#include "analyze/decls.h"
#include "analyze/lexer.h"

namespace dialite {
namespace analyze {
namespace {

std::vector<std::string> TokenTexts(const LexedFile& lexed) {
  std::vector<std::string> out;
  for (const Token& t : lexed.tokens) out.push_back(t.text);
  return out;
}

// ------------------------------------------------------------------ lexer

TEST(LexerTest, RawStringContentsNeverTokenize) {
  // The payload contains comment openers, braces, a fake loop and a fake
  // call — none of it may leak into the token stream.
  const std::string src =
      "const char* q = R\"sql(for (;;) { Score(/* hi */); })sql\";\n"
      "int after = 1;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  for (const std::string& t : texts) {
    EXPECT_NE(t, "for");
    EXPECT_NE(t, "Score");
  }
  // The literal collapses to one string token and the file goes on.
  EXPECT_NE(std::find(texts.begin(), texts.end(), "\"\""), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "after"), texts.end());
}

TEST(LexerTest, RawStringEncodingPrefixes) {
  const std::string src =
      "auto a = u8R\"(x { y)\";\n"
      "auto b = LR\"d(} /* z)d\";\n"
      "int tail = 2;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "{"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "}"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "tail"), texts.end());
}

TEST(LexerTest, LineContinuationMacroEmitsNoTokens) {
  // The whole #define is one preprocessor logical line across splices;
  // sleep_for must not appear as a token, and the line counter must still
  // advance so `after` is stamped with its real line.
  const std::string src =
      "#define NAP()     \\\n"
      "  do {            \\\n"
      "    sleep_for(1); \\\n"
      "  } while (0)\n"
      "int after = 1;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "sleep_for"), texts.end());
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens.front().text, "int");
  EXPECT_EQ(lexed.tokens.front().line, 5);
}

TEST(LexerTest, SpliceInsideIdentifierAndString) {
  // Translation phase 2: the splice joins physical lines before
  // tokenization, so an identifier (or string) can straddle lines.
  const std::string src = "int spli\\\nced = 0;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "spliced"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "spli"), texts.end());
}

TEST(LexerTest, BlockCommentsDoNotNest) {
  // The first */ closes the comment even after an inner /* — so `live`
  // must tokenize and `dead` (inside the comment) must not.
  const std::string src =
      "/* outer /* looks nested */ int live = 1;\n"
      "/* int dead = 2;\n"
      "   still the same comment */ int live2 = 3;\n";
  LexedFile lexed = Lex("t.cc", src);
  const std::vector<std::string> texts = TokenTexts(lexed);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "live"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "live2"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "dead"), texts.end());
}

TEST(LexerTest, WaiversCoverOwnAndNextLine) {
  const std::string src =
      "// analyze: no-cancel(bounded by construction)\n"
      "int covered = 1;\n"
      "int uncovered = 2;\n"
      "int waived_inline = 3;  // dialite-lint: allow(naked-thread)\n";
  LexedFile lexed = Lex("t.cc", src);
  EXPECT_TRUE(HasWaiver(lexed, "no-cancel", 1));
  EXPECT_TRUE(HasWaiver(lexed, "no-cancel", 2));
  EXPECT_FALSE(HasWaiver(lexed, "no-cancel", 3));
  EXPECT_FALSE(HasWaiver(lexed, "allow-blocking", 2));
  EXPECT_TRUE(HasLintWaiver(lexed, "naked-thread", 4));
  EXPECT_FALSE(HasLintWaiver(lexed, "raw-socket", 4));
}

TEST(LexerTest, IncludesRecordedWithSystemFlag) {
  const std::string src =
      "#include \"analyze/lexer.h\"\n"
      "#include <vector>\n";
  LexedFile lexed = Lex("t.cc", src);
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0].path, "analyze/lexer.h");
  EXPECT_FALSE(lexed.includes[0].system);
  EXPECT_EQ(lexed.includes[1].path, "vector");
  EXPECT_TRUE(lexed.includes[1].system);
}

// ----------------------------------------------------------------- parser

TEST(DeclsTest, MembersGuardsAndLoops) {
  const std::string src =
      "namespace outer {\n"
      "class Cache {\n"
      " public:\n"
      "  int Total(int n) {\n"
      "    int sum = 0;\n"
      "    for (int i = 0; i < n; ++i) sum += i;\n"
      "    return sum;\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int hits_ GUARDED_BY(mu_);\n"
      "  int misses_;\n"
      "  static int limit_;\n"
      "  const int cap_ = 4;\n"
      "};\n"
      "}  // namespace outer\n";
  ParsedFile pf = Parse(Lex("t.h", src));
  ASSERT_EQ(pf.classes.size(), 1u);
  const ClassInfo& cls = pf.classes[0];
  EXPECT_EQ(cls.qual_name, "outer::Cache");
  ASSERT_EQ(cls.members.size(), 5u);
  EXPECT_EQ(cls.members[0].name, "mu_");
  EXPECT_TRUE(cls.members[1].guarded);
  EXPECT_FALSE(cls.members[2].guarded);
  EXPECT_TRUE(cls.members[3].is_static);
  EXPECT_TRUE(cls.members[4].is_const);
  // The method parsed as a function with one loop, and its qualified name
  // carries both the namespace and the class.
  ASSERT_EQ(pf.functions.size(), 1u);
  EXPECT_EQ(pf.functions[0].qual_name, "outer::Cache::Total");
  EXPECT_EQ(pf.functions[0].loops.size(), 1u);
}

TEST(DeclsTest, NestedStructMembersAreAudited) {
  // Regression: members of a struct nested inside a class must be reported
  // under the inner class, and template-argument const must not mark the
  // member itself const (shared_ptr<const T> is mutable).
  const std::string src =
      "class Outer {\n"
      " public:\n"
      "  struct Entry {\n"
      "    shared_ptr<const Foo> token_sets;\n"
      "    Mutex mu{\"x\"};\n"
      "    int hits GUARDED_BY(mu);\n"
      "  };\n"
      "};\n";
  ParsedFile pf = Parse(Lex("t.h", src));
  ASSERT_EQ(pf.classes.size(), 2u);  // Entry closes (and reports) first
  const ClassInfo& entry = pf.classes[0];
  EXPECT_EQ(entry.qual_name, "Outer::Entry");
  ASSERT_EQ(entry.members.size(), 3u);
  EXPECT_EQ(entry.members[0].name, "token_sets");
  EXPECT_FALSE(entry.members[0].is_const);
  EXPECT_FALSE(entry.members[0].is_reference);
  EXPECT_EQ(entry.members[1].name, "mu");
  EXPECT_TRUE(entry.members[2].guarded);
}

TEST(DeclsTest, PointerConstnessBindsAfterLastStar) {
  const std::string src =
      "class C {\n"
      "  const Obs* obs_;\n"        // pointee const, member mutable
      "  Obs* const fixed_;\n"      // member const
      "  Obs& ref_;\n"              // reference member
      "};\n";
  ParsedFile pf = Parse(Lex("t.h", src));
  ASSERT_EQ(pf.classes.size(), 1u);
  ASSERT_EQ(pf.classes[0].members.size(), 3u);
  EXPECT_FALSE(pf.classes[0].members[0].is_const);
  EXPECT_TRUE(pf.classes[0].members[1].is_const);
  EXPECT_TRUE(pf.classes[0].members[2].is_reference);
}

// ------------------------------------------------------------ call graph

ParsedFile ParseSource(const std::string& path, const std::string& src) {
  return Parse(Lex(path, src));
}

TEST(CallGraphTest, ReachabilityStopsAtStopPatterns) {
  std::vector<ParsedFile> files;
  files.push_back(ParseSource(
      "a.cc",
      "void Leaf() {}\n"
      "void Admin() { Leaf(); }\n"
      "void Handle() { Admin(); Direct(); }\n"
      "void Direct() {}\n"
      "void Unreached() { Leaf(); }\n"));
  Project project = Project::Build(std::move(files));
  CallGraph graph(project);
  auto names = [&](const std::vector<size_t>& ids) {
    std::vector<std::string> out;
    for (size_t id : ids) out.push_back(project.fn(id).simple_name);
    return out;
  };
  // Without stops: Handle -> Admin -> Leaf plus Direct.
  std::vector<std::string> all = names(graph.Reachable({"Handle"}, {}));
  EXPECT_NE(std::find(all.begin(), all.end(), "Leaf"), all.end());
  EXPECT_EQ(std::find(all.begin(), all.end(), "Unreached"), all.end());
  // With Admin stopped, neither Admin nor its callee Leaf is audited.
  std::vector<std::string> stopped =
      names(graph.Reachable({"Handle"}, {"Admin"}));
  EXPECT_EQ(std::find(stopped.begin(), stopped.end(), "Admin"), stopped.end());
  EXPECT_EQ(std::find(stopped.begin(), stopped.end(), "Leaf"), stopped.end());
  EXPECT_NE(std::find(stopped.begin(), stopped.end(), "Direct"),
            stopped.end());
}

TEST(CallGraphTest, QualifiedPatternsMatchOnBoundary) {
  FunctionInfo fn;
  fn.simple_name = "Handle";
  fn.qual_name = "dialite::DialiteServer::Handle";
  EXPECT_TRUE(CallGraph::Matches(fn, "Handle"));
  EXPECT_TRUE(CallGraph::Matches(fn, "DialiteServer::Handle"));
  EXPECT_TRUE(CallGraph::Matches(fn, "dialite::DialiteServer::Handle"));
  // Suffix matches must respect the :: boundary — no substring tricks.
  EXPECT_FALSE(CallGraph::Matches(fn, "Server::Handle"));
  EXPECT_FALSE(CallGraph::Matches(fn, "andle"));
}

// --------------------------------------------------------- include graph

TEST(IncludeGraphTest, FindsCycleAndIgnoresSystemIncludes) {
  std::vector<ParsedFile> acyclic;
  acyclic.push_back(ParseSource("src/a.h", "#include \"b.h\"\n"
                                           "#include <vector>\n"));
  acyclic.push_back(ParseSource("src/b.h", "#include <string>\n"));
  Project ok = Project::Build(std::move(acyclic));
  EXPECT_TRUE(IncludeGraph(ok).FindCycle().empty());

  std::vector<ParsedFile> cyclic;
  cyclic.push_back(ParseSource("src/a.h", "#include \"b.h\"\n"));
  cyclic.push_back(ParseSource("src/b.h", "#include \"c.h\"\n"));
  cyclic.push_back(ParseSource("src/c.h", "#include \"a.h\"\n"));
  Project bad = Project::Build(std::move(cyclic));
  std::vector<std::string> cycle = IncludeGraph(bad).FindCycle();
  ASSERT_GE(cycle.size(), 2u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

}  // namespace
}  // namespace analyze
}  // namespace dialite
