/// Robustness and stress tests: adversarial FD inputs, concurrent reads,
/// moderate-scale end-to-end runs, and the facade keyword entry point.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "align/alite_matcher.h"
#include "common/thread_pool.h"
#include "core/dialite.h"
#include "integrate/full_disjunction.h"
#include "lake/lake_generator.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

// ------------------------------------------------------- adversarial FD

TEST(FdAdversarialTest, ConflictingChainsStayApart) {
  // a and c agree with b on DIFFERENT attributes but conflict with each
  // other; FD must produce a⊕b and b⊕c but never a⊕b⊕c.
  Table ta("A", Schema::FromNames({"k1", "x"}));
  (void)ta.AddRow({Value::String("k"), Value::String("left")});
  Table tb("B", Schema::FromNames({"k1", "k2"}));
  (void)tb.AddRow({Value::String("k"), Value::String("m")});
  Table tc("C", Schema::FromNames({"k2", "x"}));
  (void)tc.AddRow({Value::String("m"), Value::String("right")});
  NameMatcher matcher;
  std::vector<const Table*> tables = {&ta, &tb, &tc};
  auto align = matcher.Align(tables);
  ASSERT_TRUE(align.ok());
  auto fd = FullDisjunction().Integrate(tables, *align);
  ASSERT_TRUE(fd.ok());
  // Expected tuples: (k, m, left) and (k, m, right) — the x-conflict keeps
  // the chains apart. No row may contain both "left" and "right".
  EXPECT_EQ(fd->num_rows(), 2u) << fd->ToPrettyString();
  for (size_t r = 0; r < fd->num_rows(); ++r) {
    bool left = false;
    bool right = false;
    for (size_t c = 0; c < fd->num_columns(); ++c) {
      if (fd->at(r, c).is_null()) continue;
      if (fd->at(r, c).ToCsvString() == "left") left = true;
      if (fd->at(r, c).ToCsvString() == "right") right = true;
    }
    EXPECT_FALSE(left && right);
  }
}

TEST(FdAdversarialTest, AllNullRowsVanishWhenFactsExist) {
  Table ta("A", Schema::FromNames({"x", "y"}));
  (void)ta.AddRow({Value::Null(), Value::Null()});
  (void)ta.AddRow({Value::String("v"), Value::Null()});
  NameMatcher matcher;
  std::vector<const Table*> tables = {&ta};
  auto align = matcher.Align(tables);
  ASSERT_TRUE(align.ok());
  auto fd = FullDisjunction().Integrate(tables, *align);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->num_rows(), 1u);
  EXPECT_EQ(fd->at(0, 0).as_string(), "v");
}

TEST(FdAdversarialTest, DuplicateInputTuplesCollapseWithProvenanceUnion) {
  Table ta("A", Schema::FromNames({"x"}));
  (void)ta.AddRow({Value::String("v")});
  Table tb("B", Schema::FromNames({"x"}));
  (void)tb.AddRow({Value::String("v")});
  ManualAlignment manual({{{"A", 0}, {"B", 0}}});
  auto align = manual.Align({&ta, &tb});
  ASSERT_TRUE(align.ok());
  std::vector<const Table*> tables = {&ta, &tb};
  auto fd = FullDisjunction().Integrate(tables, *align);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(fd->num_rows(), 1u);
  EXPECT_EQ(fd->provenance(0), (std::vector<std::string>{"A#0", "B#0"}));
}

TEST(FdStressTest, ModerateScaleCompletesQuickly) {
  // 6 fragments x ~500 rows with a shared key column: FD must finish and
  // produce exactly the entity count.
  constexpr size_t kEntities = 500;
  std::vector<Table> storage;
  for (int f = 0; f < 6; ++f) {
    Table t("F" + std::to_string(f),
            Schema::FromNames({"key", "a" + std::to_string(f)}));
    for (size_t i = 0; i < kEntities; ++i) {
      (void)t.AddRow({Value::String("e" + std::to_string(i)),
                      Value::Int(static_cast<int64_t>(i * 10 + f))});
    }
    storage.push_back(std::move(t));
  }
  std::vector<const Table*> tables;
  for (const Table& t : storage) tables.push_back(&t);
  NameMatcher matcher;
  auto align = matcher.Align(tables);
  ASSERT_TRUE(align.ok());
  auto fd = FullDisjunction().Integrate(tables, *align);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  EXPECT_EQ(fd->num_rows(), kEntities);
  // Every output row is fully populated (key + 6 attributes).
  for (size_t c = 0; c < fd->num_columns(); ++c) {
    EXPECT_FALSE(fd->at(0, c).is_null());
  }
}

// ----------------------------------------------------- concurrent reads

TEST(ConcurrencyTest, ParallelSearchesOnSharedIndexes) {
  DataLake lake = paper::MakeDemoLake(16);
  Dialite dialite(&lake);
  ASSERT_TRUE(dialite.RegisterDefaults().ok());
  ASSERT_TRUE(dialite.BuildIndexes().ok());
  Table query = paper::MakeT1();

  std::atomic<int> failures{0};
  ThreadPool pool(8);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&dialite, &query, &failures, i] {
      DiscoveryQuery q{&query, static_cast<size_t>(i % 3), 5};
      auto hits = dialite.DiscoverAll(q);
      if (!hits.ok()) failures.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ParallelIntegrations) {
  Table t1 = paper::MakeT1();
  Table t2 = paper::MakeT2();
  Table t3 = paper::MakeT3();
  std::vector<const Table*> set = {&t1, &t2, &t3};
  AliteMatcher matcher;
  auto align = matcher.Align(set);
  ASSERT_TRUE(align.ok());
  Table expected = paper::MakeFig3Expected();

  std::atomic<int> mismatches{0};
  ThreadPool pool(6);
  for (int i = 0; i < 24; ++i) {
    pool.Submit([&set, &align, &expected, &mismatches] {
      FullDisjunction fd;
      auto r = fd.Integrate(set, *align);
      if (!r.ok() || !r->SameRowsAs(expected)) mismatches.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(mismatches.load(), 0);
}

// --------------------------------------------------- facade keyword hook

TEST(FacadeKeywordTest, SearchKeywordsThroughDialite) {
  DataLake lake = paper::MakeDemoLake(8);
  Dialite dialite(&lake);
  ASSERT_TRUE(dialite.RegisterDefaults().ok());
  // Before BuildIndexes: error.
  EXPECT_FALSE(dialite.SearchKeywords("vaccine", 5).ok());
  ASSERT_TRUE(dialite.BuildIndexes().ok());
  auto hits = dialite.SearchKeywords("vaccine approver", 5);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_FALSE(hits->empty());
}

}  // namespace
}  // namespace dialite
