#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "align/alite_matcher.h"
#include "integrate/full_disjunction.h"
#include "integrate/join_ops.h"
#include "integrate/tuple_codes.h"
#include "lake/lake_generator.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

Alignment AlignSet(const std::vector<const Table*>& tables) {
  AliteMatcher matcher;
  auto r = matcher.Align(tables);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

/// Returns the row index whose provenance equals `prov`, or npos.
size_t RowWithProv(const Table& t, std::vector<std::string> prov) {
  std::sort(prov.begin(), prov.end());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.provenance(r) == prov) return r;
  }
  return static_cast<size_t>(-1);
}

// ----------------------------------------------------------- primitives

TEST(TupleCodecTest, ExtremeDoublesEncodeWithoutOverflow) {
  // TupleCodec::Encode folds integral doubles into their int64 class, but
  // the cast is range-guarded: values at/above 2^63, ±1e300, and NaN must
  // take the raw-bits path (no float→int overflow, which is UB) while
  // keeping Identical() semantics — NaN never equals itself, 5 == 5.0.
  Table t("extremes", Schema::FromNames({"v"}));
  const double two63 = 9223372036854775808.0;  // 2^63, exactly representable
  ASSERT_TRUE(t.AddRow({Value::Double(two63)}).ok());
  ASSERT_TRUE(t.AddRow({Value::Double(two63)}).ok());
  ASSERT_TRUE(t.AddRow({Value::Double(-two63)}).ok());  // int64 min: foldable
  ASSERT_TRUE(t.AddRow({Value::Double(1e300)}).ok());
  ASSERT_TRUE(t.AddRow({Value::Double(-1e300)}).ok());
  ASSERT_TRUE(t.AddRow({Value::Double(std::nan(""))}).ok());
  ASSERT_TRUE(t.AddRow({Value::Double(std::nan(""))}).ok());
  ASSERT_TRUE(t.AddRow({Value::Int(5)}).ok());
  ASSERT_TRUE(t.AddRow({Value::Double(5.0)}).ok());
  TupleCodec codec;
  std::vector<uint32_t> codes = codec.EncodeTable(t);
  ASSERT_EQ(codes.size(), 9u);
  EXPECT_EQ(codes[0], codes[1]);  // 2^63 is a single equivalence class
  EXPECT_NE(codes[0], codes[2]);
  EXPECT_NE(codes[3], codes[4]);
  EXPECT_NE(codes[5], codes[6]);  // each NaN occurrence is its own class
  EXPECT_EQ(codes[7], codes[8]);  // 5 and 5.0 fold together
  for (uint32_t c : codes) EXPECT_FALSE(CodeIsNull(c));
}

TEST(TupleOpsTest, SubsumptionBasics) {
  Row a = {Value::String("x"), Value::Null()};
  Row b = {Value::String("x"), Value::Int(3)};
  EXPECT_TRUE(TupleSubsumedBy(a, b));
  EXPECT_FALSE(TupleSubsumedBy(b, a));
  EXPECT_TRUE(TupleSubsumedBy(a, a));
  Row c = {Value::String("y"), Value::Int(3)};
  EXPECT_FALSE(TupleSubsumedBy(b, c));
  // All-null is subsumed by anything.
  Row nulls = {Value::Null(), Value::ProducedNull()};
  EXPECT_TRUE(TupleSubsumedBy(nulls, b));
}

TEST(TupleOpsTest, ComplementRequiresSharedAgreement) {
  Row a = {Value::String("x"), Value::Int(1), Value::Null()};
  Row b = {Value::String("x"), Value::Null(), Value::Int(2)};
  EXPECT_TRUE(TuplesComplement(a, b));
  // Conflict on a shared attribute.
  Row c = {Value::String("y"), Value::Null(), Value::Int(2)};
  EXPECT_FALSE(TuplesComplement(a, c));
  // No shared non-null attribute.
  Row d = {Value::Null(), Value::Null(), Value::Int(2)};
  EXPECT_FALSE(TuplesComplement(a, d));
}

TEST(TupleOpsTest, MergePrefersValuesThenMissingNulls) {
  Row a = {Value::String("x"), Value::Null(), Value::ProducedNull()};
  Row b = {Value::String("x"), Value::Int(4), Value::ProducedNull()};
  Row m = MergeTuples(a, b);
  EXPECT_EQ(m[0].as_string(), "x");
  EXPECT_EQ(m[1].as_int(), 4);
  EXPECT_TRUE(m[2].is_produced_null());
  // missing + produced -> missing.
  Row c = {Value::Null(), Value::Null(), Value::Null()};
  Row d = {Value::ProducedNull(), Value::ProducedNull(), Value::Int(1)};
  Row m2 = MergeTuples(c, d);
  EXPECT_TRUE(m2[0].is_missing_null());
  EXPECT_TRUE(m2[1].is_missing_null());
  EXPECT_EQ(m2[2].as_int(), 1);
}

TEST(OuterUnionTest, PadsWithProducedNulls) {
  Table t1 = paper::MakeT1();
  Table t3 = paper::MakeT3();
  std::vector<const Table*> tables = {&t1, &t3};
  Alignment a = AlignSet(tables);
  auto u = BuildOuterUnion(tables, a, "u");
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(u->num_rows(), 7u);
  EXPECT_EQ(u->num_columns(), 5u);
  // T1 rows have produced nulls in T3-only attributes.
  size_t r = RowWithProv(*u, {"t1"});
  ASSERT_NE(r, static_cast<size_t>(-1));
  size_t produced = 0;
  for (size_t c = 0; c < u->num_columns(); ++c) {
    if (u->at(r, c).is_produced_null()) ++produced;
  }
  EXPECT_EQ(produced, 2u);
}

// ------------------------------------------------- Fig. 3 reproduction

TEST(FullDisjunctionTest, ReproducesPaperFigure3) {
  Table t1 = paper::MakeT1();
  Table t2 = paper::MakeT2();
  Table t3 = paper::MakeT3();
  std::vector<const Table*> tables = {&t1, &t2, &t3};
  Alignment a = AlignSet(tables);
  FullDisjunction fd;
  auto r = fd.Integrate(tables, a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Table expected = paper::MakeFig3Expected();
  EXPECT_EQ(r->num_rows(), 7u);
  EXPECT_TRUE(r->SameRowsAs(expected)) << r->ToPrettyString();
  // Check the paper's TIDs: f1 = {t1, t7}, f6 = {t6, t9}, f7 = {t10}.
  EXPECT_NE(RowWithProv(*r, {"t1", "t7"}), static_cast<size_t>(-1));
  EXPECT_NE(RowWithProv(*r, {"t6", "t9"}), static_cast<size_t>(-1));
  EXPECT_NE(RowWithProv(*r, {"t10"}), static_cast<size_t>(-1));
  // f5 keeps Mexico City's missing (±) vaccination rate.
  size_t f5 = RowWithProv(*r, {"t5"});
  ASSERT_NE(f5, static_cast<size_t>(-1));
  bool has_missing = false;
  for (size_t c = 0; c < r->num_columns(); ++c) {
    if (r->at(f5, c).is_missing_null()) has_missing = true;
  }
  EXPECT_TRUE(has_missing);
}

// ------------------------------------------------- Fig. 8 reproduction

class VaccineSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t4_ = paper::MakeT4();
    t5_ = paper::MakeT5();
    t6_ = paper::MakeT6();
    tables_ = {&t4_, &t5_, &t6_};
    alignment_ = AlignSet(tables_);
  }
  Table t4_, t5_, t6_;
  std::vector<const Table*> tables_;
  Alignment alignment_;
};

TEST_F(VaccineSetTest, FdReproducesFigure8b) {
  FullDisjunction fd;
  auto r = fd.Integrate(tables_, alignment_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Fig. 8(b): exactly 3 tuples — f8, f12, f13.
  EXPECT_EQ(r->num_rows(), 3u) << r->ToPrettyString();
  // f8 = {t11, t13}: Pfizer, FDA, United States.
  size_t f8 = RowWithProv(*r, {"t11", "t13"});
  ASSERT_NE(f8, static_cast<size_t>(-1));
  // f13 = {t13, t15}: J&J, FDA, United States — the fact outer join loses.
  size_t f13 = RowWithProv(*r, {"t13", "t15"});
  ASSERT_NE(f13, static_cast<size_t>(-1));
  bool jnj_fda = false;
  for (size_t c = 0; c < r->num_columns(); ++c) {
    if (!r->at(f13, c).is_null() && r->at(f13, c).ToCsvString() == "J&J") {
      jnj_fda = true;
    }
  }
  EXPECT_TRUE(jnj_fda);
  // f12 merges t12, t14, t16: JnJ / USA.
  size_t f12 = RowWithProv(*r, {"t12", "t14", "t16"});
  EXPECT_NE(f12, static_cast<size_t>(-1)) << r->ToPrettyString();
}

TEST_F(VaccineSetTest, OuterJoinReproducesFigure8a) {
  OuterJoinIntegration oj;
  auto r = oj.Integrate(tables_, alignment_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Fig. 8(a): 5 tuples f8..f12.
  EXPECT_EQ(r->num_rows(), 5u) << r->ToPrettyString();
  // The J&J-approver connection is lost: no row has both J&J and FDA.
  for (size_t row = 0; row < r->num_rows(); ++row) {
    bool jnj = false;
    bool fda = false;
    bool pfizer = false;
    for (size_t c = 0; c < r->num_columns(); ++c) {
      if (r->at(row, c).is_null()) continue;
      std::string s = r->at(row, c).ToCsvString();
      if (s == "J&J") jnj = true;
      if (s == "FDA") fda = true;
      if (s == "Pfizer") pfizer = true;
    }
    EXPECT_FALSE(jnj && fda && !pfizer)
        << "outer join must not connect J&J to FDA";
  }
}

TEST_F(VaccineSetTest, FdIsOrderIndependentOuterJoinIsNot) {
  FullDisjunction fd;
  std::vector<const Table*> reversed = {&t6_, &t5_, &t4_};
  AliteMatcher matcher;
  auto align_rev = matcher.Align(reversed);
  ASSERT_TRUE(align_rev.ok());
  auto fd1 = fd.Integrate(tables_, alignment_);
  auto fd2 = fd.Integrate(reversed, *align_rev);
  ASSERT_TRUE(fd1.ok());
  ASSERT_TRUE(fd2.ok());
  // Column ORDER follows first appearance and differs across input orders;
  // compare as relations by projecting fd2 into fd1's column order.
  std::vector<size_t> proj;
  for (size_t c = 0; c < fd1->num_columns(); ++c) {
    size_t idx = fd2->schema().IndexOf(fd1->schema().column(c).name);
    ASSERT_NE(idx, Schema::npos) << fd1->schema().column(c).name;
    proj.push_back(idx);
  }
  Table fd2_reordered = fd2->ProjectColumns(proj, "fd2r");
  EXPECT_TRUE(fd1->SameRowsAs(fd2_reordered))
      << "FD must be associative/order-independent";
}

TEST_F(VaccineSetTest, ParallelFdMatchesSequentialFd) {
  FullDisjunction fd;
  ParallelFullDisjunction pfd(4);
  auto r1 = fd.Integrate(tables_, alignment_);
  auto r2 = pfd.Integrate(tables_, alignment_);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r1->SameRowsAs(*r2)) << r2->ToPrettyString();
}

TEST_F(VaccineSetTest, NaiveFdMatchesIndexedFd) {
  FullDisjunction fd;
  NaiveFullDisjunction naive;
  auto r1 = fd.Integrate(tables_, alignment_);
  auto r2 = naive.Integrate(tables_, alignment_);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->SameRowsAs(*r2));
}

TEST_F(VaccineSetTest, InnerJoinCollapses) {
  InnerJoinIntegration ij;
  auto r = ij.Integrate(tables_, alignment_);
  ASSERT_TRUE(r.ok());
  // T4⋈T5 on Approver keeps only the FDA pair; joining T6 then needs
  // Vaccine+Country equality: Pfizer vs J&J/JnJ fails -> empty.
  EXPECT_EQ(r->num_rows(), 0u) << r->ToPrettyString();
}

TEST_F(VaccineSetTest, UnionKeepsAllSixTuples) {
  UnionIntegration u;
  auto r = u.Integrate(tables_, alignment_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 6u);
}

// ------------------------------------------------------------ properties

TEST(FdPropertiesTest, OutputNeverLosesInputFacts) {
  // Every input tuple must be subsumed by some output tuple.
  LakeGeneratorParams p;
  p.fragments_per_domain = 3;
  p.min_rows = 10;
  p.max_rows = 25;
  p.null_rate = 0.15;
  p.domains = {"vaccine_approvals"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<const Table*> tables = out.lake.tables();
  Alignment a = AlignSet(tables);
  FullDisjunction fd;
  auto r = fd.Integrate(tables, a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto u = BuildOuterUnion(tables, a, "u");
  ASSERT_TRUE(u.ok());
  for (size_t i = 0; i < u->num_rows(); ++i) {
    bool covered = false;
    for (size_t j = 0; j < r->num_rows() && !covered; ++j) {
      covered = TupleSubsumedBy(u->row(i), r->row(j));
    }
    EXPECT_TRUE(covered) << "input tuple " << i << " lost";
  }
}

TEST(FdPropertiesTest, NoOutputTupleSubsumesAnother) {
  Table t1 = paper::MakeT1();
  Table t2 = paper::MakeT2();
  Table t3 = paper::MakeT3();
  std::vector<const Table*> tables = {&t1, &t2, &t3};
  Alignment a = AlignSet(tables);
  FullDisjunction fd;
  auto r = fd.Integrate(tables, a);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < r->num_rows(); ++i) {
    for (size_t j = 0; j < r->num_rows(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(TupleSubsumedBy(r->row(i), r->row(j)))
          << "tuple " << i << " subsumed by " << j;
    }
  }
}

TEST(FdPropertiesTest, SingleTableFdIsIdentityModuloDuplicates) {
  Table t1 = paper::MakeT1();
  std::vector<const Table*> tables = {&t1};
  Alignment a = AlignSet(tables);
  FullDisjunction fd;
  auto r = fd.Integrate(tables, a);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->SameRowsAs(t1));
}

TEST(FdPropertiesTest, FdSupersetOfOuterJoinInformation) {
  // Every outer-join output tuple is subsumed by some FD output tuple.
  Table t4 = paper::MakeT4();
  Table t5 = paper::MakeT5();
  Table t6 = paper::MakeT6();
  std::vector<const Table*> tables = {&t4, &t5, &t6};
  Alignment a = AlignSet(tables);
  auto fd_r = FullDisjunction().Integrate(tables, a);
  auto oj_r = OuterJoinIntegration().Integrate(tables, a);
  ASSERT_TRUE(fd_r.ok());
  ASSERT_TRUE(oj_r.ok());
  for (size_t i = 0; i < oj_r->num_rows(); ++i) {
    bool covered = false;
    for (size_t j = 0; j < fd_r->num_rows() && !covered; ++j) {
      covered = TupleSubsumedBy(oj_r->row(i), fd_r->row(j));
    }
    EXPECT_TRUE(covered);
  }
}

TEST(FdPropertiesTest, ParallelMatchesSequentialOnSyntheticSet) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 4;
  p.min_rows = 15;
  p.max_rows = 40;
  p.null_rate = 0.1;
  p.domains = {"football_clubs"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<const Table*> tables = out.lake.tables();
  Alignment a = AlignSet(tables);
  auto r1 = FullDisjunction().Integrate(tables, a);
  auto r2 = ParallelFullDisjunction(3).Integrate(tables, a);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->num_rows(), r2->num_rows());
  EXPECT_TRUE(r1->SameRowsAs(*r2));
}

TEST(FdPropertiesTest, MaxTuplesGuardFires) {
  // Two tall tables complementing through a shared constant column blow up
  // the pool; the guard must turn that into an error, not a hang.
  Table a("A", Schema::FromNames({"k", "x"}));
  Table b("B", Schema::FromNames({"k", "y"}));
  for (int i = 0; i < 40; ++i) {
    (void)a.AddRow({Value::String("same"), Value::Int(i)});
    (void)b.AddRow({Value::String("same"), Value::Int(100 + i)});
  }
  ManualAlignment manual({{{"A", 0}, {"B", 0}}});
  auto align = manual.Align({&a, &b});
  ASSERT_TRUE(align.ok());
  FullDisjunction::Params p;
  p.max_tuples = 500;
  FullDisjunction fd(p);
  std::vector<const Table*> tables = {&a, &b};
  auto r = fd.Integrate(tables, *align);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(OuterJoinTest, OrderDependenceDemonstrated) {
  // The classic non-associativity: with T6 first, JnJ rows join Country
  // differently than with T4 first.
  Table t4 = paper::MakeT4();
  Table t5 = paper::MakeT5();
  Table t6 = paper::MakeT6();
  AliteMatcher matcher;
  std::vector<const Table*> order1 = {&t4, &t5, &t6};
  std::vector<const Table*> order2 = {&t6, &t4, &t5};
  auto a1 = matcher.Align(order1);
  auto a2 = matcher.Align(order2);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  OuterJoinIntegration oj;
  auto r1 = oj.Integrate(order1, *a1);
  auto r2 = oj.Integrate(order2, *a2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r1->SameRowsAs(*r2))
      << "outer join should be order-dependent on this set";
}

TEST(UnionIntegrationTest, DeduplicatesExactTuples) {
  Table a("A", Schema::FromNames({"x"}));
  (void)a.AddRow({Value::String("v")});
  Table b("B", Schema::FromNames({"x"}));
  (void)b.AddRow({Value::String("v")});
  (void)b.AddRow({Value::String("w")});
  ManualAlignment manual({{{"A", 0}, {"B", 0}}});
  auto align = manual.Align({&a, &b});
  ASSERT_TRUE(align.ok());
  std::vector<const Table*> tables = {&a, &b};
  auto r = UnionIntegration().Integrate(tables, *align);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  // Merged provenance on the duplicate.
  size_t rv = RowWithProv(*r, {"A#0", "B#0"});
  EXPECT_NE(rv, static_cast<size_t>(-1));
}

// ------------------------------------------------- request deadlines

TEST(FdDeadlineTest, PreExpiredTokenAbortsBeforeFirstFixpointIteration) {
  Table t1 = paper::MakeT1();
  Table t2 = paper::MakeT2();
  Table t3 = paper::MakeT3();
  std::vector<const Table*> tables = {&t1, &t2, &t3};
  Alignment a = AlignSet(tables);
  FullDisjunction fd;
  ObservabilityContext obs;
  fd.set_observability(&obs);
  CancelToken cancel;
  cancel.SetDeadlineAfter(std::chrono::nanoseconds(0));
  auto r = fd.Integrate(tables, a, &cancel);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  // The FD counters flush on the cancel path too: input_rows proves the
  // flush happened, fixpoint_iterations == 0 proves the worklist aborted
  // before consuming its first item.
  EXPECT_GT(obs.metrics().CounterValue("integrate.fd.input_rows"), 0u);
  EXPECT_EQ(obs.metrics().CounterValue("integrate.fd.fixpoint_iterations"),
            0u);
}

TEST(FdDeadlineTest, EveryIntegrationOperatorHonoursPreExpiredToken) {
  Table t1 = paper::MakeT1();
  Table t2 = paper::MakeT2();
  Table t3 = paper::MakeT3();
  std::vector<const Table*> tables = {&t1, &t2, &t3};
  Alignment a = AlignSet(tables);
  FullDisjunction fd;
  NaiveFullDisjunction naive;
  ParallelFullDisjunction parallel(2);
  MinimumUnionIntegration min_union;
  const IntegrationOperator* ops[] = {&fd, &naive, &parallel, &min_union};
  for (const IntegrationOperator* op : ops) {
    CancelToken cancel;
    cancel.SetDeadlineAfter(std::chrono::nanoseconds(0));
    auto r = op->Integrate(tables, a, &cancel);
    ASSERT_FALSE(r.ok()) << op->name();
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << op->name() << ": " << r.status().ToString();
  }
}

}  // namespace
}  // namespace dialite
