/// Tests for the versioned mmap lake snapshot layer: container round-trip
/// and corruption rejection, zero-copy lake/table restore, sketch seeding,
/// and the Dialite facade's SaveSnapshot/OpenSnapshot end-to-end flow.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/dialite.h"
#include "lake/paper_fixtures.h"
#include "snapshot/bytes.h"
#include "snapshot/format.h"
#include "snapshot/lake_codec.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"

namespace dialite {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void PatchU32(std::string* bytes, size_t off, uint32_t v) {
  std::memcpy(&(*bytes)[off], &v, sizeof(v));
}

/// Recomputes the header CRC after a deliberate header edit, so tests hit
/// the specific rejection path instead of the checksum catch-all.
void FixHeaderCrc(std::string* bytes) {
  PatchU32(bytes, 48, Crc32(bytes->data(), 48));
}

std::string MakeTwoSectionSnapshot() {
  SnapshotWriter w;
  BinaryWriter a;
  a.U32(7);
  a.Str("hello");
  EXPECT_TRUE(w.AddSection("alpha", std::move(a)).ok());
  EXPECT_TRUE(w.AddSection("beta", std::string("raw payload")).ok());
  Result<std::string> bytes = w.FinishToString();
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

TEST(SnapshotContainerTest, WriteReadRoundTrip) {
  std::string bytes = MakeTwoSectionSnapshot();
  Result<SnapshotReader> r = SnapshotReader::OpenOwning(bytes);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->format_version(), kSnapshotFormatVersion);
  EXPECT_EQ(r->file_size(), bytes.size());
  ASSERT_EQ(r->sections().size(), 2u);
  EXPECT_TRUE(r->HasSection("alpha"));
  EXPECT_TRUE(r->HasSection("beta"));
  EXPECT_FALSE(r->HasSection("gamma"));
  EXPECT_EQ(r->Section("gamma").status().code(), StatusCode::kNotFound);

  Result<std::span<const uint8_t>> alpha = r->Section("alpha");
  ASSERT_TRUE(alpha.ok());
  BinaryReader br(*alpha);
  uint32_t v = 0;
  ASSERT_TRUE(br.U32(&v).ok());
  EXPECT_EQ(v, 7u);
  std::string s;
  ASSERT_TRUE(br.Str(&s).ok());
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(br.AtEnd());

  Result<std::span<const uint8_t>> beta = r->Section("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(std::string(beta->begin(), beta->end()), "raw payload");
  // Section payloads start 64-byte aligned.
  for (const SnapshotSection& sec : r->sections()) {
    EXPECT_EQ(sec.offset % kSnapshotSectionAlign, 0u) << sec.name;
  }
}

TEST(SnapshotContainerTest, RewriteIsByteIdentical) {
  EXPECT_EQ(MakeTwoSectionSnapshot(), MakeTwoSectionSnapshot());
}

TEST(SnapshotContainerTest, RejectsTruncation) {
  std::string bytes = MakeTwoSectionSnapshot();
  for (size_t keep : {size_t{0}, size_t{16}, size_t{63}, size_t{64},
                      bytes.size() - 1}) {
    Result<SnapshotReader> r = SnapshotReader::OpenOwning(bytes.substr(0, keep));
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << "keep=" << keep;
  }
}

TEST(SnapshotContainerTest, RejectsBadMagic) {
  std::string bytes = MakeTwoSectionSnapshot();
  bytes[0] = 'X';
  EXPECT_EQ(SnapshotReader::OpenOwning(bytes).status().code(),
            StatusCode::kParseError);
}

TEST(SnapshotContainerTest, RejectsHeaderBitFlip) {
  std::string bytes = MakeTwoSectionSnapshot();
  bytes[20] = static_cast<char>(bytes[20] ^ 0x01);  // file-size field
  EXPECT_EQ(SnapshotReader::OpenOwning(bytes).status().code(),
            StatusCode::kParseError);
}

TEST(SnapshotContainerTest, RejectsVersionSkew) {
  std::string bytes = MakeTwoSectionSnapshot();
  PatchU32(&bytes, 8, kSnapshotFormatVersion + 41);
  FixHeaderCrc(&bytes);
  Status s = SnapshotReader::OpenOwning(bytes).status();
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(SnapshotContainerTest, RejectsForeignEndianness) {
  std::string bytes = MakeTwoSectionSnapshot();
  PatchU32(&bytes, 12, __builtin_bswap32(kSnapshotEndianTag));
  FixHeaderCrc(&bytes);
  Status s = SnapshotReader::OpenOwning(bytes).status();
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(SnapshotContainerTest, RejectsPayloadBitFlip) {
  std::string bytes = MakeTwoSectionSnapshot();
  bytes[kSnapshotHeaderSize] =
      static_cast<char>(bytes[kSnapshotHeaderSize] ^ 0x80);
  Status s = SnapshotReader::OpenOwning(bytes).status();
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  // With payload verification off, the container opens (callers then rely
  // on payload-level validation instead).
  SnapshotReadOptions opts;
  opts.verify_section_crcs = false;
  EXPECT_TRUE(SnapshotReader::OpenOwning(bytes, opts).ok());
}

std::string SaveLakeToString(const DataLake& lake) {
  SnapshotWriter w;
  EXPECT_TRUE(WriteLake(lake, &w).ok());
  Result<std::string> bytes = w.FinishToString();
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().column(c).name, b.schema().column(c).name);
    EXPECT_EQ(a.schema().column(c).type, b.schema().column(c).type);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      const Value& va = a.at(r, c);
      const Value& vb = b.at(r, c);
      EXPECT_EQ(va.is_null(), vb.is_null()) << a.name() << " " << r << "," << c;
      EXPECT_EQ(va.ToCsvString(), vb.ToCsvString())
          << a.name() << " " << r << "," << c;
    }
  }
  EXPECT_EQ(a.provenance(), b.provenance());
}

TEST(LakeSnapshotTest, RoundTripPreservesEveryTable) {
  DataLake lake = paper::MakeDemoLake(8);
  std::string bytes = SaveLakeToString(lake);
  Result<SnapshotReader> reader = SnapshotReader::OpenOwning(std::move(bytes));
  ASSERT_TRUE(reader.ok());
  Result<std::unique_ptr<DataLake>> opened = ReadLake(*reader);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ((*opened)->table_names(), lake.table_names());
  for (const std::string& name : lake.table_names()) {
    ExpectTablesEqual(*lake.Get(name), *(*opened)->Get(name));
  }
}

TEST(LakeSnapshotTest, ReSaveIsByteIdentical) {
  DataLake lake = paper::MakeDemoLake(8);
  // Populate MinHash sketches so the sketch section is non-trivial.
  for (const std::string& name : lake.table_names()) {
    lake.sketch_cache().MinHashSignatures(*lake.Get(name), 128, 7);
  }
  std::string bytes1 = SaveLakeToString(lake);
  Result<SnapshotReader> reader = SnapshotReader::OpenOwning(bytes1);
  ASSERT_TRUE(reader.ok());
  Result<std::unique_ptr<DataLake>> opened = ReadLake(*reader);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(SaveLakeToString(**opened), bytes1);
}

TEST(LakeSnapshotTest, SeedsMinHashSketches) {
  DataLake lake = paper::MakeDemoLake(4);
  const std::string t0 = lake.table_names().front();
  std::shared_ptr<const std::vector<MinHash>> fresh =
      lake.sketch_cache().MinHashSignatures(*lake.Get(t0), 128, 7);
  std::string bytes = SaveLakeToString(lake);
  Result<SnapshotReader> reader = SnapshotReader::OpenOwning(std::move(bytes));
  ASSERT_TRUE(reader.ok());
  Result<std::unique_ptr<DataLake>> opened = ReadLake(*reader);
  ASSERT_TRUE(opened.ok());
  // The seeded cache returns the persisted signatures without touching the
  // (mmap-backed) table data.
  std::shared_ptr<const std::vector<MinHash>> seeded =
      (*opened)->sketch_cache().MinHashSignatures(*(*opened)->Get(t0), 128, 7);
  ASSERT_EQ(seeded->size(), fresh->size());
  for (size_t c = 0; c < fresh->size(); ++c) {
    EXPECT_EQ((*seeded)[c].signature(), (*fresh)[c].signature());
  }
}

TEST(LakeSnapshotTest, BorrowedTableOutlivesLakeAndReader) {
  Table copy("empty", Schema::FromNames({"x"}));
  {
    DataLake lake = paper::MakeDemoLake(2);
    std::string bytes = SaveLakeToString(lake);
    Result<SnapshotReader> reader =
        SnapshotReader::OpenOwning(std::move(bytes));
    ASSERT_TRUE(reader.ok());
    Result<std::unique_ptr<DataLake>> opened = ReadLake(*reader);
    ASSERT_TRUE(opened.ok());
    copy = *(*opened)->Get((*opened)->table_names().front());
    // Lake and reader die here; the copy's storage anchor keeps the
    // snapshot bytes alive.
  }
  ASSERT_GT(copy.num_rows(), 0u);
  for (size_t c = 0; c < copy.num_columns(); ++c) {
    for (size_t r = 0; r < copy.num_rows(); ++r) {
      (void)copy.at(r, c).ToCsvString();  // must not touch freed memory
    }
  }
}

TEST(LakeSnapshotTest, BorrowedTableCopiesOnWrite) {
  DataLake lake = paper::MakeDemoLake(2);
  std::string bytes = SaveLakeToString(lake);
  Result<SnapshotReader> reader = SnapshotReader::OpenOwning(std::move(bytes));
  ASSERT_TRUE(reader.ok());
  Result<std::unique_ptr<DataLake>> opened = ReadLake(*reader);
  ASSERT_TRUE(opened.ok());
  const Table& borrowed = *(*opened)->Get("T2");
  const size_t rows_before = borrowed.num_rows();
  ASSERT_GT(rows_before, 0u);

  Table copy = borrowed;
  Row row;
  for (size_t c = 0; c < copy.num_columns(); ++c) {
    row.push_back(borrowed.at(0, c));  // duplicate row 0, types preserved
  }
  ASSERT_TRUE(copy.AddRow(std::move(row)).ok());
  EXPECT_EQ(copy.num_rows(), rows_before + 1);
  EXPECT_EQ(copy.at(rows_before, 0).ToCsvString(),
            borrowed.at(0, 0).ToCsvString());
  // The mmap-backed original is untouched.
  EXPECT_EQ(borrowed.num_rows(), rows_before);
  ExpectTablesEqual(*lake.Get("T2"), borrowed);
}

TEST(DialiteSnapshotTest, SaveRequiresBuiltIndexes) {
  DataLake lake = paper::MakeDemoLake(2);
  Dialite system(&lake);
  ASSERT_TRUE(system.RegisterDefaults().ok());
  EXPECT_EQ(system.SaveSnapshot(TempPath("never_written.snap")).code(),
            StatusCode::kInternal);
}

TEST(DialiteSnapshotTest, OpenRejectsMissingAndGarbageFiles) {
  EXPECT_EQ(Dialite::OpenSnapshot("/nonexistent/lake.snap").status().code(),
            StatusCode::kIoError);
  std::string path = TempPath("garbage.snap");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a snapshot", f);
    std::fclose(f);
  }
  EXPECT_EQ(Dialite::OpenSnapshot(path).status().code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(DialiteSnapshotTest, OpenedSystemMatchesFreshBuildEverywhere) {
  DataLake lake = paper::MakeDemoLake(10);
  Dialite fresh(&lake);
  ASSERT_TRUE(fresh.RegisterDefaults().ok());
  ASSERT_TRUE(fresh.BuildIndexes().ok());

  std::string path = TempPath("demo_lake.snap");
  ASSERT_TRUE(fresh.SaveSnapshot(path).ok());
  Result<SnapshotSystem> opened = Dialite::OpenSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 10};
  auto fresh_hits = fresh.DiscoverAll(q);
  auto opened_hits = opened->dialite->DiscoverAll(q);
  ASSERT_TRUE(fresh_hits.ok());
  ASSERT_TRUE(opened_hits.ok()) << opened_hits.status().ToString();
  ASSERT_EQ(fresh_hits->size(), opened_hits->size());
  for (const auto& [algo, hits] : *fresh_hits) {
    ASSERT_TRUE(opened_hits->count(algo)) << algo;
    const std::vector<DiscoveryHit>& other = (*opened_hits)[algo];
    ASSERT_EQ(hits.size(), other.size()) << algo;
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].table_name, other[i].table_name) << algo;
      EXPECT_DOUBLE_EQ(hits[i].score, other[i].score) << algo;
    }
  }
  std::remove(path.c_str());
}

TEST(DialiteSnapshotTest, SaveOpenSaveIsByteIdentical) {
  DataLake lake = paper::MakeDemoLake(6);
  Dialite fresh(&lake);
  ASSERT_TRUE(fresh.RegisterDefaults().ok());
  ASSERT_TRUE(fresh.BuildIndexes().ok());
  std::string path1 = TempPath("rt1.snap");
  std::string path2 = TempPath("rt2.snap");
  ASSERT_TRUE(fresh.SaveSnapshot(path1).ok());
  Result<SnapshotSystem> opened = Dialite::OpenSnapshot(path1);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened->dialite->SaveSnapshot(path2).ok());

  std::FILE* f1 = std::fopen(path1.c_str(), "rb");
  std::FILE* f2 = std::fopen(path2.c_str(), "rb");
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  std::string b1, b2;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f1)) > 0) b1.append(buf, n);
  while ((n = std::fread(buf, 1, sizeof(buf), f2)) > 0) b2.append(buf, n);
  std::fclose(f1);
  std::fclose(f2);
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(DialiteSnapshotTest, OpenRejectsTinyFiles) {
  // Regression: a 0-byte file used to mmap as nullptr and fall through to
  // header parsing; any file shorter than the 64-byte header must fail
  // with a clear corruption error instead.
  for (size_t size : {size_t{0}, size_t{1}, kSnapshotHeaderSize - 1}) {
    std::string path = TempPath("tiny_" + std::to_string(size) + ".snap");
    {
      std::FILE* f = std::fopen(path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      for (size_t i = 0; i < size; ++i) std::fputc('D', f);
      std::fclose(f);
    }
    Status s = Dialite::OpenSnapshot(path).status();
    EXPECT_EQ(s.code(), StatusCode::kParseError) << "size=" << size;
    EXPECT_NE(s.message().find("too small"), std::string::npos)
        << "size=" << size << ": " << s.message();
    std::remove(path.c_str());
  }
}

TEST(DialiteSnapshotTest, FailedSaveLeavesExistingSnapshotIntact) {
  DataLake lake = paper::MakeDemoLake(4);
  Dialite system(&lake);
  ASSERT_TRUE(system.RegisterDefaults().ok());
  ASSERT_TRUE(system.BuildIndexes().ok());

  std::string path = TempPath("atomic_save.snap");
  ASSERT_TRUE(system.SaveSnapshot(path).ok());

  // Sabotage the staging location: SaveSnapshot writes to "<path>.tmp"
  // first, so a directory squatting there makes open(O_CREAT) fail before
  // a single destination byte is touched. (chmod tricks don't work here —
  // CI containers run the suite as root.)
  const std::string tmp = path + ".tmp";
  ASSERT_EQ(::mkdir(tmp.c_str(), 0755), 0);
  EXPECT_FALSE(system.SaveSnapshot(path).ok());
  ASSERT_EQ(::rmdir(tmp.c_str()), 0);

  // The pre-existing snapshot still opens and serves queries.
  Result<SnapshotSystem> opened = Dialite::OpenSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->lake->size(), lake.size());
  std::remove(path.c_str());
}

TEST(DialiteSnapshotTest, FailedRenameCleansUpTempFile) {
  DataLake lake = paper::MakeDemoLake(2);
  Dialite system(&lake);
  ASSERT_TRUE(system.RegisterDefaults().ok());
  ASSERT_TRUE(system.BuildIndexes().ok());

  // A directory at the DESTINATION lets every write into "<path>.tmp"
  // succeed and fails only the final rename — the cleanup path must then
  // remove the orphaned temp file.
  std::string path = TempPath("dest_is_dir.snap");
  ASSERT_EQ(::mkdir(path.c_str(), 0755), 0);
  EXPECT_FALSE(system.SaveSnapshot(path).ok());
  struct stat st;
  EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0)
      << "failed save left " << path << ".tmp behind";
  ASSERT_EQ(::rmdir(path.c_str()), 0);
}

TEST(DialiteSnapshotTest, SnapshotMissingIndexSectionTriggersRebuild) {
  DataLake lake = paper::MakeDemoLake(6);
  // A lake-only snapshot (no idx.* sections) — every algorithm rebuilds.
  std::string path = TempPath("lake_only.snap");
  {
    SnapshotWriter w;
    ASSERT_TRUE(WriteLake(lake, &w).ok());
    ASSERT_TRUE(w.Finish(path).ok());
  }
  Result<SnapshotSystem> opened = Dialite::OpenSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 5};
  auto hits = opened->dialite->Discover(q, "josie");
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dialite
