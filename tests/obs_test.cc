#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/tracer.h"

namespace dialite {
namespace {

// ----------------------------------------------------------------- Counter

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
}

// --------------------------------------------------------------- Histogram

TEST(HistogramTest, ExactStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty convention
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h;
  h.Record(0);  // bucket 0
  h.Record(1);  // [1,2) -> bucket 1
  h.Record(2);  // [2,4) -> bucket 2
  h.Record(3);  // [2,4) -> bucket 2
  h.Record(4);  // [4,8) -> bucket 3
  std::vector<uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // trailing zeros trimmed
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.max(), ~uint64_t{0});
  EXPECT_EQ(h.bucket_counts().size(), Histogram::kBuckets);
}

TEST(HistogramTest, TopBucketBoundaries) {
  // Bucket-index boundary guard: values at and above 2^63 must land in the
  // last bucket (index kBuckets - 1), not one past the end of the array.
  // Run under ASan/UBSan this would catch an off-by-one in BucketOf.
  Histogram h;
  h.Record(uint64_t{1} << 63);        // smallest value of the top bucket
  h.Record(~uint64_t{0});             // largest representable value
  h.Record((uint64_t{1} << 63) - 1);  // largest value of the bucket below
  std::vector<uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(buckets[Histogram::kBuckets - 1], 2u);
  EXPECT_EQ(buckets[Histogram::kBuckets - 2], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), (uint64_t{1} << 63) - 1);
  EXPECT_EQ(h.max(), ~uint64_t{0});
}

// ----------------------------------------------------------------- Metrics

TEST(MetricsTest, GetOrCreateStablePointers) {
  Metrics m;
  Counter* c1 = m.counter("a");
  Counter* c2 = m.counter("a");
  EXPECT_EQ(c1, c2);
  c1->Add(5);
  EXPECT_EQ(m.CounterValue("a"), 5u);
  EXPECT_EQ(m.CounterValue("never_touched"), 0u);
}

TEST(MetricsTest, Snapshots) {
  Metrics m;
  m.Add("x", 3);
  m.Add("y");
  m.Record("lat", 100);
  m.Record("lat", 200);
  auto counters = m.CounterSnapshot();
  EXPECT_EQ(counters.at("x"), 3u);
  EXPECT_EQ(counters.at("y"), 1u);
  auto hists = m.HistogramSnapshots();
  ASSERT_TRUE(hists.count("lat"));
  EXPECT_EQ(hists.at("lat").count, 2u);
  EXPECT_EQ(hists.at("lat").sum, 300u);
  EXPECT_TRUE(m.HasHistogram("lat"));
  EXPECT_FALSE(m.HasHistogram("nope"));
}

// ------------------------------------------------------------------ Tracer

TEST(TracerTest, NestedSpansFormTree) {
  Tracer t;
  {
    ScopedSpan outer(&t, "outer");
    { ScopedSpan inner1(&t, "inner1"); }
    { ScopedSpan inner2(&t, "inner2"); }
  }
  EXPECT_EQ(t.root_count(), 1u);
  EXPECT_TRUE(t.HasSpan("outer"));
  EXPECT_TRUE(t.HasSpan("inner1"));
  EXPECT_TRUE(t.HasSpan("inner2"));
  std::string tree;
  t.AppendTree(&tree);
  // Children are indented under the root.
  EXPECT_NE(tree.find("outer"), std::string::npos);
  EXPECT_NE(tree.find("\n  inner1"), std::string::npos);
}

TEST(TracerTest, SiblingRootsWhenNotNested) {
  Tracer t;
  { ScopedSpan a(&t, "a"); }
  { ScopedSpan b(&t, "b"); }
  EXPECT_EQ(t.root_count(), 2u);
}

TEST(TracerTest, NullTracerIsInert) {
  ScopedSpan s(nullptr, "ghost");
  // No crash; nothing recorded anywhere (nothing to assert on — the span
  // must simply not touch thread-local state in a way that breaks nesting).
  Tracer t;
  {
    ScopedSpan outer(&t, "outer");
    ScopedSpan ghost(nullptr, "ghost");
    ScopedSpan inner(&t, "inner");
  }
  EXPECT_TRUE(t.HasSpan("inner"));
  EXPECT_EQ(t.root_count(), 1u);
}

TEST(TracerTest, TwoTracersDoNotCrossNest) {
  Tracer t1;
  Tracer t2;
  {
    ScopedSpan outer(&t1, "outer");
    ScopedSpan foreign(&t2, "foreign");
    ScopedSpan inner(&t1, "inner");
  }
  // "inner" nests under "outer" (same tracer) even though a foreign span
  // sits between them on the stack; "foreign" is a root of its own tracer.
  EXPECT_EQ(t1.root_count(), 1u);
  EXPECT_EQ(t2.root_count(), 1u);
  EXPECT_TRUE(t1.HasSpan("inner"));
  EXPECT_FALSE(t2.HasSpan("inner"));
}

TEST(TracerTest, WorkerThreadSpansBecomeRoots) {
  Tracer t;
  {
    ScopedSpan outer(&t, "outer");
    std::thread worker([&t] { ScopedSpan w(&t, "worker"); });
    worker.join();
  }
  // The worker span cannot nest under a parent on another thread.
  EXPECT_EQ(t.root_count(), 2u);
}

// ----------------------------------------------------------- JSON export

TEST(JsonTest, StringEscaping) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\nd\te");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\"");
}

/// Schema snapshot: the export is one JSON object with exactly the three
/// top-level keys, counters as an object of integers, histograms as objects
/// with count/sum/min/max/mean/buckets, spans as a list of
/// {name, wall_ns, cpu_ns, children} trees.
TEST(ObservabilityContextTest, JsonExportSchema) {
  ObservabilityContext obs;
  obs.metrics().Add("stage.events", 3);
  obs.metrics().Record("stage.latency_ns", 1000);
  { ScopedSpan s(&obs.tracer(), "stage.run"); }

  std::string json = obs.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"stage.events\":3"), std::string::npos);
  EXPECT_NE(json.find("\"stage.latency_ns\":{\"count\":1,\"sum\":1000"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage.run\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"children\":[]"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check without a parser).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObservabilityContextTest, EmptyExport) {
  ObservabilityContext obs;
  EXPECT_EQ(obs.ToJson(),
            "{\"counters\":{},\"histograms\":{},\"spans\":[]}");
}

TEST(ObservabilityContextTest, TreeStringListsEverything) {
  ObservabilityContext obs;
  obs.metrics().Add("n.items", 7);
  obs.metrics().Record("n.sizes", 32);
  { ScopedSpan s(&obs.tracer(), "phase"); }
  std::string tree = obs.ToTreeString();
  EXPECT_NE(tree.find("phase"), std::string::npos);
  EXPECT_NE(tree.find("n.items"), std::string::npos);
  EXPECT_NE(tree.find("n.sizes"), std::string::npos);
}

// ----------------------------------------------------- null-safe helpers

TEST(NullSafeHelpersTest, NullContextFastPath) {
  // None of these may crash or allocate; they are the disabled fast path.
  ObsAdd(nullptr, "x");
  ObsSet(nullptr, "x", 1);
  ObsRecord(nullptr, "x", 1);
  EXPECT_EQ(ObsCounter(nullptr, "x"), nullptr);
  { ObsSpan s(nullptr, "x"); }

  ObservabilityContext obs;
  ObsAdd(&obs, "x", 2);
  ObsSet(&obs, "g", 9);
  ObsRecord(&obs, "h", 4);
  Counter* c = ObsCounter(&obs, "x");
  ASSERT_NE(c, nullptr);
  c->Add(3);
  EXPECT_EQ(obs.metrics().CounterValue("x"), 5u);
  EXPECT_EQ(obs.metrics().CounterValue("g"), 9u);
  EXPECT_TRUE(obs.metrics().HasHistogram("h"));
}

}  // namespace
}  // namespace dialite
