/// Tests for the extended components: SimHash sketches, Starmie-style
/// embedding discovery, COCOA correlation-aware discovery, and the
/// correlation finder analysis.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analyze/correlation_finder.h"
#include "core/dialite.h"
#include "discovery/cocoa.h"
#include "discovery/starmie.h"
#include "kb/embedding.h"
#include "lake/lake_generator.h"
#include "lake/paper_fixtures.h"
#include "sketch/simhash.h"

namespace dialite {
namespace {

bool HasHit(const std::vector<DiscoveryHit>& hits, const std::string& name) {
  return std::any_of(hits.begin(), hits.end(), [&](const DiscoveryHit& h) {
    return h.table_name == name;
  });
}

// ---------------------------------------------------------------- SimHash

TEST(SimHashTest, IdenticalVectorsHaveZeroDistance) {
  SimHash sh(64, 8);
  std::vector<float> v = {1.0f, -2.0f, 0.5f, 3.0f, -1.0f, 0.0f, 2.0f, -0.5f};
  EXPECT_EQ(SimHash::Hamming(sh.Signature(v), sh.Signature(v)), 0u);
}

TEST(SimHashTest, OppositeVectorsHaveMaxDistance) {
  SimHash sh(128, 8);
  std::vector<float> v = {1.0f, -2.0f, 0.5f, 3.0f, -1.0f, 0.7f, 2.0f, -0.5f};
  std::vector<float> neg(v.size());
  for (size_t i = 0; i < v.size(); ++i) neg[i] = -v[i];
  size_t d = SimHash::Hamming(sh.Signature(v), sh.Signature(neg));
  EXPECT_EQ(d, 128u);  // every hyperplane flips sign
}

TEST(SimHashTest, HammingTracksCosine) {
  // Closer vectors must have smaller Hamming distance on average.
  SimHash sh(256, 16);
  std::vector<float> base(16);
  for (size_t i = 0; i < 16; ++i) base[i] = static_cast<float>(i % 5) - 2.0f;
  std::vector<float> near = base;
  near[0] += 0.3f;
  std::vector<float> far(16);
  for (size_t i = 0; i < 16; ++i) far[i] = (i % 2) ? 1.5f : -2.5f;
  size_t d_near = SimHash::Hamming(sh.Signature(base), sh.Signature(near));
  size_t d_far = SimHash::Hamming(sh.Signature(base), sh.Signature(far));
  EXPECT_LT(d_near, d_far);
  // Cosine estimate is monotone in distance.
  EXPECT_GT(sh.EstimateCosine(d_near), sh.EstimateCosine(d_far));
}

TEST(SimHashIndexTest, FindsNearNeighbors) {
  SimHashIndex idx(64, 8, 8);
  std::vector<float> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> a_near = {1.1f, 2, 3, 4, 5, 6, 7, 8.2f};
  std::vector<float> far = {-5, 3, -2, 8, -1, 0.5f, -7, 2};
  ASSERT_TRUE(idx.Insert(1, a).ok());
  ASSERT_TRUE(idx.Insert(2, far).ok());
  std::vector<uint64_t> hits = idx.Query(a_near);
  EXPECT_NE(std::find(hits.begin(), hits.end(), 1u), hits.end());
  EXPECT_EQ(idx.size(), 2u);
}

// ---------------------------------------------------------------- Starmie

class StarmiePaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake_ = paper::MakeDemoLake(16);
    ASSERT_TRUE(starmie_.BuildIndex(lake_).ok());
    query_ = paper::MakeT1();
  }
  DataLake lake_;
  StarmieSearch starmie_;
  Table query_;
};

TEST_F(StarmiePaperTest, FindsUnionableT2) {
  DiscoveryQuery q{&query_, /*query_column=*/1, /*k=*/5};
  auto hits = starmie_.Search(q);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ((*hits)[0].table_name, "T2")
      << "T2's full-schema embedding match must win";
}

TEST_F(StarmiePaperTest, ContextualizationChangesVectors) {
  // Same column values in different table contexts embed differently.
  Table alone("alone", Schema::FromNames({"City"}));
  (void)alone.AddRow({Value::String("Berlin")});
  (void)alone.AddRow({Value::String("Boston")});
  Table with_ctx("ctx", Schema::FromNames({"City", "Vaccine"}));
  (void)with_ctx.AddRow({Value::String("Berlin"), Value::String("Pfizer")});
  (void)with_ctx.AddRow({Value::String("Boston"), Value::String("Moderna")});
  std::vector<Embedding> v1 = starmie_.ContextualizedColumns(alone);
  std::vector<Embedding> v2 = starmie_.ContextualizedColumns(with_ctx);
  double self_sim = CosineSimilarity(v1[0], v2[0]);
  EXPECT_LT(self_sim, 0.999);  // context shifted the vector
  EXPECT_GT(self_sim, 0.5);    // but the content still dominates
}

TEST_F(StarmiePaperTest, RequiresIntentColumnMatch) {
  // Searching on the vaccination-rate column ("63%"...) should not return
  // tables lacking any comparable column.
  DiscoveryQuery q{&query_, /*query_column=*/2, /*k=*/5};
  auto hits = starmie_.Search(q);
  ASSERT_TRUE(hits.ok());
  for (const DiscoveryHit& h : *hits) {
    EXPECT_NE(h.table_name, "T4");
    EXPECT_NE(h.table_name, "T5");
  }
}

TEST(StarmieLakeTest, UnionableRecallUnderScrambledHeaders) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 5;
  p.header_noise = 1.0;
  p.domains = {"world_cities", "companies"};
  auto out = SyntheticLakeGenerator(p).Generate();
  StarmieSearch starmie;
  ASSERT_TRUE(starmie.BuildIndex(out.lake).ok());
  const Table* query = out.lake.Get("world_cities_frag0");
  ASSERT_NE(query, nullptr);
  DiscoveryQuery q{query, 0, 9};
  auto hits = starmie.Search(q);
  ASSERT_TRUE(hits.ok());
  std::vector<std::string> truth = out.truth.UnionableWith(query->name());
  size_t found = 0;
  for (const std::string& t : truth) {
    if (HasHit(*hits, t)) ++found;
  }
  EXPECT_GE(found * 2, truth.size())
      << "recall@9 below 0.5 (" << found << "/" << truth.size() << ")";
}

// ------------------------------------------------------------------ COCOA

TEST(CocoaTest, BestJoinedCorrelationDetectsPlantedSignal) {
  // Candidate's metric is a monotone function of the query's metric.
  Table q("q", Schema::FromNames({"City", "metric"}));
  Table c("c", Schema::FromNames({"City", "derived", "noise"}));
  for (int i = 0; i < 20; ++i) {
    std::string city = "city" + std::to_string(i);
    (void)q.AddRow({Value::String(city), Value::Int(i)});
    (void)c.AddRow({Value::String(city), Value::Int(1000 - 3 * i * i),
                    Value::Int((i * 7919) % 13)});
  }
  double rho = BestJoinedCorrelation(q, 0, c, 0, 3);
  EXPECT_NEAR(rho, 1.0, 1e-9);  // Spearman |ρ| of a monotone map
}

TEST(CocoaTest, NoNumericColumnsMeansZero) {
  Table q("q", Schema::FromNames({"City"}));
  (void)q.AddRow({Value::String("a")});
  Table c("c", Schema::FromNames({"City"}));
  (void)c.AddRow({Value::String("a")});
  EXPECT_DOUBLE_EQ(BestJoinedCorrelation(q, 0, c, 0, 1), 0.0);
}

TEST(CocoaTest, RanksCorrelatedTableAboveMerelyJoinable) {
  DataLake lake;
  Table corr("correlated", Schema::FromNames({"City", "derived"}));
  Table plain("plain_join", Schema::FromNames({"City", "random"}));
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    std::string city = "city" + std::to_string(i);
    (void)corr.AddRow({Value::String(city), Value::Int(5 * i + 3)});
    (void)plain.AddRow(
        {Value::String(city),
         Value::Int(static_cast<int64_t>(rng.NextBounded(7)))});
  }
  ASSERT_TRUE(lake.AddTable(std::move(corr)).ok());
  ASSERT_TRUE(lake.AddTable(std::move(plain)).ok());

  Table query("query", Schema::FromNames({"City", "metric"}));
  for (int i = 0; i < 30; ++i) {
    (void)query.AddRow(
        {Value::String("city" + std::to_string(i)), Value::Int(i)});
  }
  CocoaSearch cocoa;
  ASSERT_TRUE(cocoa.BuildIndex(lake).ok());
  DiscoveryQuery q{&query, 0, 5};
  auto hits = cocoa.Search(q);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_GE(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].table_name, "correlated");
  EXPECT_NEAR((*hits)[0].score, 1.0, 1e-9);
  EXPECT_EQ((*hits)[1].table_name, "plain_join");
  EXPECT_LT((*hits)[1].score, 0.2);  // joinability fallback only
}

TEST(CocoaTest, RespectsContainmentThreshold) {
  DataLake lake;
  Table t("half", Schema::FromNames({"City", "x"}));
  for (int i = 0; i < 10; ++i) {
    (void)t.AddRow({Value::String("city" + std::to_string(i)),
                    Value::Int(i)});
  }
  ASSERT_TRUE(lake.AddTable(std::move(t)).ok());
  Table query("query", Schema::FromNames({"City", "y"}));
  for (int i = 5; i < 25; ++i) {  // only 5/20 overlap half's cities
    (void)query.AddRow(
        {Value::String("city" + std::to_string(i)), Value::Int(i)});
  }
  CocoaSearch::Params p;
  p.min_containment = 0.5;
  CocoaSearch cocoa(p);
  ASSERT_TRUE(cocoa.BuildIndex(lake).ok());
  DiscoveryQuery q{&query, 0, 5};
  auto hits = cocoa.Search(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());  // containment 0.25 < 0.5
}

// ----------------------------------------------------- Correlation finder

TEST(CorrelationFinderTest, FindsPlantedPairFirst) {
  Table t("t", Schema::FromNames({"a", "b", "c", "label"}));
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    double noise = rng.NextGaussian();
    (void)t.AddRow({Value::Int(i), Value::Double(2.0 * i + 0.01 * noise),
                    Value::Double(rng.NextDouble() * 100),
                    Value::String("r" + std::to_string(i))});
  }
  auto r = FindCorrelations(t);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  EXPECT_EQ((*r)[0].column_a, "a");
  EXPECT_EQ((*r)[0].column_b, "b");
  EXPECT_GT((*r)[0].pearson, 0.99);
  EXPECT_EQ((*r)[0].support, 40u);
}

TEST(CorrelationFinderTest, WorksOnFig3Table) {
  Table fd = paper::MakeFig3Expected();
  auto r = FindCorrelations(fd);
  ASSERT_TRUE(r.ok());
  // The cases↔vaccination pair (0.90) must rank above
  // vaccination↔death-rate (0.16).
  ASSERT_GE(r->size(), 2u);
  EXPECT_NEAR(std::fabs((*r)[0].pearson), 0.90, 0.05);
  bool found_016 = false;
  for (const CorrelationFinding& f : *r) {
    if (std::fabs(f.pearson - 0.16) < 0.01) found_016 = true;
  }
  EXPECT_TRUE(found_016);
}

TEST(CorrelationFinderTest, RespectsOptions) {
  Table t("t", Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 10; ++i) {
    (void)t.AddRow({Value::Int(i), Value::Int(i)});
  }
  CorrelationFinderOptions opt;
  opt.min_support = 11;  // more than available
  auto r = FindCorrelations(t, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  opt.min_support = 3;
  opt.min_abs_pearson = 1.1;  // impossible
  auto r2 = FindCorrelations(t, opt);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST(CorrelationFinderTest, FindingsTableRendering) {
  std::vector<CorrelationFinding> fs = {{"x", "y", 0.5, 0.4, 12}};
  Table t = CorrelationFindingsToTable(fs);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0).as_string(), "x");
  EXPECT_DOUBLE_EQ(t.at(0, 2).as_double(), 0.5);
  EXPECT_EQ(t.at(0, 4).as_int(), 12);
}

// ------------------------------------------------------ core integration

TEST(ExtendedDefaultsTest, NewComponentsRegistered) {
  DataLake lake = paper::MakeDemoLake(0);
  Dialite d(&lake);
  ASSERT_TRUE(d.RegisterDefaults().ok());
  auto algos = d.DiscoveryAlgorithms();
  EXPECT_NE(std::find(algos.begin(), algos.end(), "starmie"), algos.end());
  EXPECT_NE(std::find(algos.begin(), algos.end(), "cocoa"), algos.end());
  auto analyses = d.Analyses();
  EXPECT_NE(std::find(analyses.begin(), analyses.end(), "correlations"),
            analyses.end());
}

TEST(ExtendedDefaultsTest, CorrelationsAnalysisOnPipeline) {
  DataLake lake = paper::MakeDemoLake(0);
  Dialite d(&lake);
  ASSERT_TRUE(d.RegisterDefaults().ok());
  ASSERT_TRUE(d.BuildIndexes().ok());
  Table fd = paper::MakeFig3Expected();
  auto r = d.Analyze(fd, "correlations");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->num_rows(), 1u);
}

}  // namespace
}  // namespace dialite
