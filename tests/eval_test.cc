/// Tests for the evaluation utilities (retrieval metrics, alignment
/// metrics, ground-truth alignment oracle).

#include <gtest/gtest.h>

#include "align/alite_matcher.h"
#include "core/eval.h"
#include "integrate/full_disjunction.h"
#include "lake/lake_generator.h"

namespace dialite {
namespace {

// ---------------------------------------------------------- retrieval

TEST(EvaluateRankingTest, PerfectRanking) {
  std::vector<DiscoveryHit> ranked = {{"a", 3}, {"b", 2}, {"c", 1}};
  RetrievalMetrics m = EvaluateRanking(ranked, {"a", "b", "c"}, 3);
  EXPECT_DOUBLE_EQ(m.precision_at_k, 1.0);
  EXPECT_DOUBLE_EQ(m.recall_at_k, 1.0);
  EXPECT_DOUBLE_EQ(m.average_precision, 1.0);
  EXPECT_EQ(m.hits, 3u);
}

TEST(EvaluateRankingTest, PartialAndMisordered) {
  // relevant = {a, b}; ranked: x, a, y, b.
  std::vector<DiscoveryHit> ranked = {{"x", 4}, {"a", 3}, {"y", 2}, {"b", 1}};
  RetrievalMetrics m = EvaluateRanking(ranked, {"a", "b"}, 4);
  EXPECT_DOUBLE_EQ(m.precision_at_k, 0.5);
  EXPECT_DOUBLE_EQ(m.recall_at_k, 1.0);
  // AP = (1/2 + 2/4) / 2 = 0.5.
  EXPECT_DOUBLE_EQ(m.average_precision, 0.5);
}

TEST(EvaluateRankingTest, CutoffRespected) {
  std::vector<DiscoveryHit> ranked = {{"x", 3}, {"y", 2}, {"a", 1}};
  RetrievalMetrics m = EvaluateRanking(ranked, {"a"}, 2);
  EXPECT_EQ(m.hits, 0u);
  EXPECT_DOUBLE_EQ(m.recall_at_k, 0.0);
}

TEST(EvaluateRankingTest, EmptyRelevantSet) {
  std::vector<DiscoveryHit> ranked = {{"x", 1}};
  RetrievalMetrics m = EvaluateRanking(ranked, {}, 5);
  EXPECT_EQ(m.relevant, 0u);
  EXPECT_DOUBLE_EQ(m.average_precision, 0.0);
}

// ---------------------------------------------------------- alignment

TEST(EvaluateAlignmentTest, OracleAlignmentScoresPerfect) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 4;
  p.header_noise = 1.0;
  p.domains = {"companies"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<const Table*> tables = out.lake.tables();
  Alignment oracle = GroundTruthAlignment(out.truth, tables);
  EXPECT_TRUE(oracle.Validate(tables).ok());
  AlignmentMetrics m = EvaluateAlignment(oracle, out.truth, tables);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_EQ(m.false_negatives, 0u);
}

TEST(EvaluateAlignmentTest, MatchesManualComputation) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 3;
  p.domains = {"universities"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<const Table*> tables = out.lake.tables();
  AliteMatcher matcher;
  auto r = matcher.Align(tables);
  ASSERT_TRUE(r.ok());
  AlignmentMetrics m = EvaluateAlignment(*r, out.truth, tables);
  EXPECT_GE(m.precision, 0.0);
  EXPECT_LE(m.precision, 1.0);
  EXPECT_GE(m.f1, 0.9);  // clean headers: near-perfect
}

TEST(GroundTruthAlignmentTest, UsableForIntegration) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 3;
  p.min_rows = 10;
  p.max_rows = 25;
  p.domains = {"vaccine_approvals"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<const Table*> tables = out.lake.tables();
  Alignment oracle = GroundTruthAlignment(out.truth, tables);
  auto fd = FullDisjunction().Integrate(tables, oracle);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  EXPECT_GT(fd->num_rows(), 0u);
}

}  // namespace
}  // namespace dialite
