#include <gtest/gtest.h>

#include <filesystem>
#include <unordered_set>

#include "lake/data_lake.h"
#include "lake/lake_generator.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

Table SmallTable(const std::string& name) {
  Table t(name, Schema::FromNames({"a", "b"}));
  (void)t.AddRow({Value::Int(1), Value::String("x")});
  return t;
}

// ------------------------------------------------------------- DataLake

TEST(DataLakeTest, AddAndGet) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(SmallTable("t1")).ok());
  ASSERT_TRUE(lake.AddTable(SmallTable("t2")).ok());
  EXPECT_EQ(lake.size(), 2u);
  ASSERT_NE(lake.Get("t1"), nullptr);
  EXPECT_EQ(lake.Get("t1")->num_rows(), 1u);
  EXPECT_EQ(lake.Get("missing"), nullptr);
  EXPECT_TRUE(lake.Contains("t2"));
}

TEST(DataLakeTest, RejectsDuplicateAndUnnamed) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(SmallTable("t")).ok());
  EXPECT_EQ(lake.AddTable(SmallTable("t")).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(lake.AddTable(SmallTable("")).code(),
            StatusCode::kInvalidArgument);
}

TEST(DataLakeTest, TableNamesPreserveInsertionOrder) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(SmallTable("zebra")).ok());
  ASSERT_TRUE(lake.AddTable(SmallTable("apple")).ok());
  ASSERT_EQ(lake.table_names().size(), 2u);
  EXPECT_EQ(lake.table_names()[0], "zebra");
  EXPECT_EQ(lake.table_names()[1], "apple");
}

TEST(DataLakeTest, Stats) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(SmallTable("t1")).ok());
  ASSERT_TRUE(lake.AddTable(SmallTable("t2")).ok());
  LakeStats s = lake.Stats();
  EXPECT_EQ(s.num_tables, 2u);
  EXPECT_EQ(s.total_rows, 2u);
  EXPECT_EQ(s.total_columns, 4u);
}

TEST(DataLakeTest, SaveAndLoadDirectoryRoundTrip) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(SmallTable("alpha")).ok());
  ASSERT_TRUE(lake.AddTable(SmallTable("beta")).ok());
  std::string dir = testing::TempDir() + "/dialite_lake_rt";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(lake.SaveDirectory(dir).ok());

  DataLake loaded;
  Result<size_t> n = loaded.LoadDirectory(dir);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  ASSERT_NE(loaded.Get("alpha"), nullptr);
  EXPECT_TRUE(loaded.Get("alpha")->SameRowsAs(*lake.Get("alpha")));
  std::filesystem::remove_all(dir);
}

TEST(DataLakeTest, LoadMissingDirectoryFails) {
  DataLake lake;
  EXPECT_FALSE(lake.LoadDirectory("/nonexistent/dir").ok());
}

// ------------------------------------------------------------ Generator

TEST(LakeGeneratorTest, AllDomainsProduceBaseTables) {
  SyntheticLakeGenerator gen;
  for (const std::string& d : SyntheticLakeGenerator::AvailableDomains()) {
    Table t = gen.MakeBaseTable(d);
    EXPECT_GT(t.num_rows(), 10u) << d;
    EXPECT_GE(t.num_columns(), 5u) << d;
  }
}

TEST(LakeGeneratorTest, DeterministicForSeed) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 2;
  p.domains = {"companies"};
  p.seed = 123;
  SyntheticLakeGenerator gen(p);
  auto out1 = gen.Generate();
  auto out2 = SyntheticLakeGenerator(p).Generate();
  ASSERT_EQ(out1.lake.size(), out2.lake.size());
  for (const std::string& n : out1.lake.table_names()) {
    ASSERT_TRUE(out2.lake.Contains(n));
    EXPECT_TRUE(out1.lake.Get(n)->SameRowsAs(*out2.lake.Get(n)));
  }
}

TEST(LakeGeneratorTest, GeneratesRequestedFragments) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 5;
  p.domains = {"companies", "universities"};
  SyntheticLakeGenerator gen(p);
  auto out = gen.Generate();
  EXPECT_EQ(out.lake.size(), 10u);
  EXPECT_EQ(out.truth.TablesOfDomain("companies").size(), 5u);
  EXPECT_EQ(out.truth.DomainOf("companies_frag0"), "companies");
}

TEST(LakeGeneratorTest, FragmentsRespectRowAndColumnBounds) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 6;
  p.min_rows = 10;
  p.max_rows = 30;
  p.min_columns = 2;
  p.domains = {"world_cities"};
  auto out = SyntheticLakeGenerator(p).Generate();
  for (const Table* t : out.lake.tables()) {
    EXPECT_GE(t->num_rows(), 10u);
    EXPECT_LE(t->num_rows(), 30u);
    EXPECT_GE(t->num_columns(), 2u);
    EXPECT_LE(t->num_columns(), 5u);
  }
}

TEST(LakeGeneratorTest, NullInjectionRate) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 10;
  p.null_rate = 0.3;
  p.domains = {"country_facts"};
  auto out = SyntheticLakeGenerator(p).Generate();
  double frac = 0.0;
  for (const Table* t : out.lake.tables()) frac += t->NullFraction();
  frac /= static_cast<double>(out.lake.size());
  EXPECT_NEAR(frac, 0.3, 0.07);
}

TEST(LakeGeneratorTest, HeaderNoisePerturbsSomeHeaders) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 10;
  p.header_noise = 1.0;  // always perturb
  p.domains = {"covid_city_stats"};
  auto out = SyntheticLakeGenerator(p).Generate();
  size_t canonical = 0;
  size_t total = 0;
  for (const Table* t : out.lake.tables()) {
    for (const ColumnDef& c : t->schema().columns()) {
      ++total;
      if (c.name == "City" || c.name == "Country" ||
          c.name == "VaccinationRate" || c.name == "TotalCases" ||
          c.name == "DeathRate") {
        ++canonical;
      }
    }
  }
  // With noise=1.0 most headers should be synonyms/scrambles; synonym pools
  // do contain the canonical spelling, so allow a minority.
  EXPECT_LT(canonical, total / 2);
}

TEST(LakeGeneratorTest, GroundTruthUnionable) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 4;
  p.domains = {"companies", "flights"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<std::string> u = out.truth.UnionableWith("companies_frag1");
  EXPECT_EQ(u.size(), 3u);
  for (const std::string& t : u) {
    EXPECT_EQ(out.truth.DomainOf(t), "companies");
    EXPECT_NE(t, "companies_frag1");
  }
}

TEST(LakeGeneratorTest, GroundTruthColumnsAndAlignment) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 3;
  p.domains = {"universities"};
  p.header_noise = 1.0;
  auto out = SyntheticLakeGenerator(p).Generate();
  // Every generated column must map to a base column.
  for (const Table* t : out.lake.tables()) {
    for (size_t c = 0; c < t->num_columns(); ++c) {
      EXPECT_FALSE(out.truth.BaseColumnOf(t->name(), c).empty());
    }
  }
  // Columns with the same base key align across fragments.
  const std::string& key0 = out.truth.BaseColumnOf("universities_frag0", 0);
  bool found_pair = false;
  for (size_t c = 0; c < out.lake.Get("universities_frag1")->num_columns();
       ++c) {
    if (out.truth.BaseColumnOf("universities_frag1", c) == key0) {
      EXPECT_TRUE(
          out.truth.SameBaseColumn("universities_frag0", 0,
                                   "universities_frag1", c));
      found_pair = true;
    }
  }
  (void)found_pair;  // fragments may not share this column; that's valid
}

TEST(LakeGeneratorTest, JoinableGroundTruthFindsOverlappingFragments) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 6;
  p.min_rows = 60;
  p.max_rows = 110;
  p.null_rate = 0.0;
  p.domains = {"world_cities"};
  auto out = SyntheticLakeGenerator(p).Generate();
  // Find a fragment whose column 0 is the City column.
  for (const Table* t : out.lake.tables()) {
    for (size_t c = 0; c < t->num_columns(); ++c) {
      if (out.truth.BaseColumnOf(t->name(), c) == "City") {
        std::vector<std::string> joinable =
            out.truth.JoinableWith(out.lake, t->name(), c, 0.3);
        EXPECT_FALSE(joinable.empty())
            << "large city fragments should overlap";
        return;
      }
    }
  }
  FAIL() << "no City column generated";
}

// --------------------------------------------------------- Paper fixtures

TEST(PaperFixturesTest, TablesMatchFigure2) {
  Table t1 = paper::MakeT1();
  EXPECT_EQ(t1.num_rows(), 3u);
  EXPECT_EQ(t1.num_columns(), 3u);
  EXPECT_EQ(t1.at(0, 1).as_string(), "Berlin");
  EXPECT_EQ(t1.provenance(0), std::vector<std::string>{"t1"});

  Table t2 = paper::MakeT2();
  EXPECT_TRUE(t2.at(1, 2).is_missing_null());  // Mexico City's ± cell
  EXPECT_EQ(t2.provenance(2), std::vector<std::string>{"t6"});

  Table t3 = paper::MakeT3();
  EXPECT_EQ(t3.num_rows(), 4u);
  EXPECT_EQ(t3.at(3, 0).as_string(), "New Delhi");
  EXPECT_EQ(t3.provenance(0), std::vector<std::string>{"t7"});
}

TEST(PaperFixturesTest, VaccineTablesMatchFigure7) {
  Table t4 = paper::MakeT4();
  Table t5 = paper::MakeT5();
  Table t6 = paper::MakeT6();
  EXPECT_TRUE(t4.at(1, 1).is_missing_null());  // JnJ approver ±
  EXPECT_TRUE(t5.at(1, 1).is_missing_null());  // USA approver ±
  EXPECT_EQ(t6.at(0, 0).as_string(), "J&J");
  EXPECT_EQ(t5.provenance(0), std::vector<std::string>{"t13"});
  EXPECT_EQ(t6.provenance(1), std::vector<std::string>{"t16"});
}

TEST(PaperFixturesTest, Fig3ExpectedShape) {
  Table fd = paper::MakeFig3Expected();
  EXPECT_EQ(fd.num_rows(), 7u);
  EXPECT_EQ(fd.num_columns(), 5u);
  ASSERT_TRUE(fd.has_provenance());
  // f1 merges t1 and t7.
  EXPECT_EQ(fd.provenance(0), (std::vector<std::string>{"t1", "t7"}));
  // f7 (New Delhi) has produced nulls for Country and VaccinationRate.
  EXPECT_TRUE(fd.at(6, 0).is_produced_null());
  EXPECT_TRUE(fd.at(6, 2).is_produced_null());
  // f5 keeps Mexico City's *missing* null.
  EXPECT_TRUE(fd.at(4, 2).is_missing_null());
}

TEST(PaperFixturesTest, DemoLakeContainsFixturesAndDistractors) {
  DataLake lake = paper::MakeDemoLake(12);
  EXPECT_TRUE(lake.Contains("T2"));
  EXPECT_TRUE(lake.Contains("T3"));
  EXPECT_TRUE(lake.Contains("T6"));
  EXPECT_GE(lake.size(), 17u);  // 5 fixtures + 12 distractors
}

}  // namespace
}  // namespace dialite
