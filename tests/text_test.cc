#include <gtest/gtest.h>

#include <cmath>

#include "text/similarity.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace dialite {
namespace {

// ------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, WordTokensLowercaseAndSplit) {
  auto toks = WordTokens("Vaccination Rate (1+ dose)");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "vaccination");
  EXPECT_EQ(toks[1], "rate");
  EXPECT_EQ(toks[2], "1");
  EXPECT_EQ(toks[3], "dose");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("--- !!").empty());
}

TEST(TokenizerTest, DistinctWordTokens) {
  auto toks = DistinctWordTokens("a b a c b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "a");
  EXPECT_EQ(toks[1], "b");
  EXPECT_EQ(toks[2], "c");
}

TEST(TokenizerTest, CharQGramsPadded) {
  auto grams = CharQGrams("ab", 3);
  // "##ab##" -> ##a, #ab, ab#, b##
  ASSERT_EQ(grams.size(), 4u);
  EXPECT_EQ(grams[0], "##a");
  EXPECT_EQ(grams[3], "b##");
}

TEST(TokenizerTest, CharQGramsEmptyInput) {
  EXPECT_TRUE(CharQGrams("", 3).empty());
}

TEST(TokenizerTest, CharQGramsSpacesBecomeUnderscore) {
  auto grams = CharQGrams("a b", 2);
  bool found = false;
  for (const auto& g : grams) {
    if (g == "a_") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TokenizerTest, NormalizeText) {
  EXPECT_EQ(NormalizeText("Death Rate (per 100k residents)"),
            "death rate per 100k residents");
  EXPECT_EQ(NormalizeText("  A--B  "), "a b");
  EXPECT_EQ(NormalizeText(""), "");
}

// ------------------------------------------------------------- Set sims

TEST(SetSimTest, OverlapSize) {
  EXPECT_EQ(OverlapSize({"a", "b", "c"}, {"b", "c", "d"}), 2u);
  EXPECT_EQ(OverlapSize({}, {"a"}), 0u);
  // Duplicates count once.
  EXPECT_EQ(OverlapSize({"a", "a"}, {"a"}), 1u);
}

TEST(SetSimTest, Jaccard) {
  EXPECT_DOUBLE_EQ(Jaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard({"a"}, {"a"}), 1.0);
}

TEST(SetSimTest, Containment) {
  EXPECT_DOUBLE_EQ(Containment({"a", "b"}, {"a", "b", "c"}), 1.0);
  EXPECT_DOUBLE_EQ(Containment({"a", "b", "z"}, {"a", "b", "c"}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Containment({}, {"a"}), 0.0);
}

TEST(SetSimTest, OverlapCoefficient) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a"}, {"a", "b", "c"}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a", "x"}, {"a", "b"}), 0.5);
}

// ------------------------------------------------------------- Edit dist

TEST(EditDistTest, Levenshtein) {
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
}

TEST(EditDistTest, LevenshteinSimilarity) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abce"), 0.75, 1e-12);
}

TEST(EditDistTest, JaroKnownValues) {
  EXPECT_DOUBLE_EQ(Jaro("", ""), 1.0);
  EXPECT_DOUBLE_EQ(Jaro("a", ""), 0.0);
  EXPECT_NEAR(Jaro("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(Jaro("dixon", "dicksonx"), 0.766667, 1e-5);
}

TEST(EditDistTest, JaroWinklerBoostsCommonPrefix) {
  double jw = JaroWinkler("martha", "marhta");
  EXPECT_NEAR(jw, 0.961111, 1e-5);
  EXPECT_GT(JaroWinkler("prefixed", "prefixes"), Jaro("prefixed", "prefixes"));
  EXPECT_DOUBLE_EQ(JaroWinkler("same", "same"), 1.0);
}

TEST(EditDistTest, MongeElkan) {
  // Every token of A matches perfectly in B.
  EXPECT_DOUBLE_EQ(MongeElkan({"new", "york"}, {"york", "new", "city"}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkan({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkan({"a"}, {}), 0.0);
  double sym = MongeElkanSymmetric({"new", "york"}, {"york", "new", "city"});
  EXPECT_LT(sym, 1.0);  // "city" has no perfect match in A
  EXPECT_GT(sym, 0.5);
}

// ------------------------------------------------------------- Cosine

TEST(CosineTest, TokenCosine) {
  EXPECT_DOUBLE_EQ(TokenCosine({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(TokenCosine({"a"}, {"b"}), 0.0);
  EXPECT_NEAR(TokenCosine({"a", "b"}, {"a", "c"}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(TokenCosine({}, {}), 1.0);
}

TEST(CosineTest, QGramJaccardCatchesTypos) {
  EXPECT_GT(QGramJaccard("vaccination", "vacination"), 0.5);
  EXPECT_LT(QGramJaccard("vaccination", "zebra"), 0.1);
}

// ------------------------------------------------------------- TF-IDF

TEST(TfIdfTest, CommonTermsDownWeighted) {
  TfIdfVectorizer v;
  v.AddDocument({"the", "cat", "sat"});
  v.AddDocument({"the", "dog", "ran"});
  v.AddDocument({"the", "bird", "flew"});
  v.Finalize();
  SparseVector cat = v.Transform({"the", "cat"});
  int64_t the_id = v.TermId("the");
  int64_t cat_id = v.TermId("cat");
  ASSERT_GE(the_id, 0);
  ASSERT_GE(cat_id, 0);
  EXPECT_LT(cat.at(static_cast<uint32_t>(the_id)),
            cat.at(static_cast<uint32_t>(cat_id)));
}

TEST(TfIdfTest, TransformIsL2Normalized) {
  TfIdfVectorizer v;
  v.AddDocument({"a", "b", "c"});
  v.AddDocument({"a", "d"});
  v.Finalize();
  SparseVector x = v.Transform({"a", "b", "b"});
  double norm = 0.0;
  for (const auto& [k, w] : x) norm += w * w;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(TfIdfTest, UnknownTermsIgnored) {
  TfIdfVectorizer v;
  v.AddDocument({"a"});
  v.Finalize();
  SparseVector x = v.Transform({"zzz"});
  EXPECT_TRUE(x.empty());
}

TEST(TfIdfTest, SparseCosine) {
  SparseVector a = {{0, 1.0}, {1, 0.0}};
  SparseVector b = {{0, 1.0}};
  EXPECT_NEAR(SparseCosine(a, b), 1.0, 1e-12);
  SparseVector c = {{2, 1.0}};
  EXPECT_DOUBLE_EQ(SparseCosine(a, c), 0.0);
  SparseVector zero;
  EXPECT_DOUBLE_EQ(SparseCosine(a, zero), 0.0);
}

TEST(TfIdfTest, VocabularyGrows) {
  TfIdfVectorizer v;
  v.AddDocument({"a", "b"});
  v.AddDocument({"b", "c"});
  v.Finalize();
  EXPECT_EQ(v.vocabulary_size(), 3u);
  EXPECT_EQ(v.num_documents(), 2u);
}

}  // namespace
}  // namespace dialite
