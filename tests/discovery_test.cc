#include <gtest/gtest.h>

#include <algorithm>

#include "discovery/custom_search.h"
#include "discovery/josie.h"
#include "discovery/lsh_ensemble_search.h"
#include "discovery/santos.h"
#include "lake/lake_generator.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

bool HasHit(const std::vector<DiscoveryHit>& hits, const std::string& name) {
  return std::any_of(hits.begin(), hits.end(), [&](const DiscoveryHit& h) {
    return h.table_name == name;
  });
}

size_t RankOf(const std::vector<DiscoveryHit>& hits, const std::string& name) {
  for (size_t i = 0; i < hits.size(); ++i) {
    if (hits[i].table_name == name) return i;
  }
  return static_cast<size_t>(-1);
}

// ------------------------------------------------------------- RankHits

TEST(RankHitsTest, SortsFiltersAndTruncates) {
  std::vector<DiscoveryHit> hits = {
      {"c", 1.0}, {"a", 3.0}, {"b", 3.0}, {"zero", 0.0}, {"neg", -1.0},
      {"d", 2.0}};
  std::vector<DiscoveryHit> ranked = RankHits(hits, 3);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].table_name, "a");  // tie with b broken by name
  EXPECT_EQ(ranked[1].table_name, "b");
  EXPECT_EQ(ranked[2].table_name, "d");
}

// ---------------------------------------------------------------- SANTOS

class SantosPaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake_ = paper::MakeDemoLake(16);
    ASSERT_TRUE(santos_.BuildIndex(lake_).ok());
    query_ = paper::MakeT1();
  }
  DataLake lake_;
  SantosSearch santos_;
  Table query_;
};

TEST_F(SantosPaperTest, FindsUnionableT2ForT1) {
  // Example 1: City is the intent column; SANTOS should surface T2.
  DiscoveryQuery q{&query_, /*query_column=*/1, /*k=*/5};
  auto hits = santos_.Search(q);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ((*hits)[0].table_name, "T2")
      << "T2 shares City semantics AND the City-locatedIn-Country "
         "relationship, so it must outrank everything";
  EXPECT_TRUE(HasHit(*hits, "T3"));  // T3 has a City column too, lower score
  EXPECT_LT(RankOf(*hits, "T2"), RankOf(*hits, "T3"));
}

TEST_F(SantosPaperTest, SearchBeforeBuildFails) {
  SantosSearch fresh;
  DiscoveryQuery q{&query_, 1, 5};
  EXPECT_FALSE(fresh.Search(q).ok());
}

TEST_F(SantosPaperTest, RejectsBadQuery) {
  DiscoveryQuery null_table{nullptr, 0, 5};
  EXPECT_FALSE(santos_.Search(null_table).ok());
  DiscoveryQuery bad_col{&query_, 99, 5};
  EXPECT_FALSE(santos_.Search(bad_col).ok());
}

TEST_F(SantosPaperTest, UnknownIntentColumnYieldsNoHits) {
  // Vaccination rate values ("63%") are not KB entities.
  DiscoveryQuery q{&query_, /*query_column=*/2, /*k=*/5};
  auto hits = santos_.Search(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(SantosLakeTest, RecallOnSyntheticUnionableGroundTruth) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 6;
  p.domains = {"world_cities", "companies", "football_clubs"};
  p.header_noise = 1.0;  // headers useless: semantics must carry the search
  auto out = SyntheticLakeGenerator(p).Generate();
  SantosSearch santos;
  ASSERT_TRUE(santos.BuildIndex(out.lake).ok());

  // Pick a fragment that kept a KB-covered column to act as intent.
  const Table* query = nullptr;
  size_t intent = 0;
  for (const Table* t : out.lake.tables()) {
    if (out.truth.DomainOf(t->name()) != "world_cities") continue;
    for (size_t c = 0; c < t->num_columns(); ++c) {
      const std::string& base = out.truth.BaseColumnOf(t->name(), c);
      if (base == "City" || base == "Country" || base == "Continent") {
        query = t;
        intent = c;
        break;
      }
    }
    if (query != nullptr) break;
  }
  ASSERT_NE(query, nullptr);
  DiscoveryQuery q{query, intent, 10};
  auto hits = santos.Search(q);
  ASSERT_TRUE(hits.ok());
  std::vector<std::string> truth = out.truth.UnionableWith(query->name());
  size_t found = 0;
  for (const std::string& t : truth) {
    if (HasHit(*hits, t)) ++found;
  }
  // Same-domain fragments dominated by KB-covered columns: expect most back.
  EXPECT_GE(found * 2, truth.size())
      << "recall@10 below 0.5 on unionable ground truth";
}

// ----------------------------------------------------------- LSH Ensemble

class LshSearchPaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake_ = paper::MakeDemoLake(16);
    ASSERT_TRUE(search_.BuildIndex(lake_).ok());
    query_ = paper::MakeT1();
  }
  DataLake lake_;
  LshEnsembleSearch search_;
  Table query_;
};

TEST_F(LshSearchPaperTest, FindsJoinableT3ForT1City) {
  // Example 1: LSH Ensemble retrieves T3, joinable on City (containment
  // 2/3 of {berlin, manchester, barcelona}).
  DiscoveryQuery q{&query_, /*query_column=*/1, /*k=*/5};
  auto hits = search_.Search(q);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_TRUE(HasHit(*hits, "T3"));
  // T2's cities are disjoint from the query's: containment 0.
  EXPECT_FALSE(HasHit(*hits, "T2"));
}

TEST_F(LshSearchPaperTest, ScoresAreExactContainments) {
  DiscoveryQuery q{&query_, 1, 5};
  auto hits = search_.Search(q);
  ASSERT_TRUE(hits.ok());
  size_t r = RankOf(*hits, "T3");
  ASSERT_NE(r, static_cast<size_t>(-1));
  EXPECT_NEAR((*hits)[r].score, 2.0 / 3.0, 1e-9);
}

TEST_F(LshSearchPaperTest, EmptyQueryColumn) {
  Table empty("empty", Schema::FromNames({"x"}));
  ASSERT_TRUE(empty.AddRow({Value::Null()}).ok());
  DiscoveryQuery q{&empty, 0, 5};
  auto hits = search_.Search(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(LshSearchLakeTest, RecallOnJoinableGroundTruth) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 6;
  p.min_rows = 60;
  p.max_rows = 110;
  p.null_rate = 0.0;
  p.domains = {"world_cities", "companies"};
  auto out = SyntheticLakeGenerator(p).Generate();
  LshEnsembleSearch::Params sp;
  sp.containment_threshold = 0.5;
  LshEnsembleSearch search(sp);
  ASSERT_TRUE(search.BuildIndex(out.lake).ok());

  // Pick a fragment that kept the City column.
  const Table* query = nullptr;
  size_t intent = 0;
  for (const Table* t : out.lake.tables()) {
    if (out.truth.DomainOf(t->name()) != "world_cities") continue;
    for (size_t c = 0; c < t->num_columns(); ++c) {
      if (out.truth.BaseColumnOf(t->name(), c) == "City") {
        query = t;
        intent = c;
        break;
      }
    }
    if (query != nullptr) break;
  }
  ASSERT_NE(query, nullptr);
  std::vector<std::string> truth =
      out.truth.JoinableWith(out.lake, query->name(), intent, 0.5);
  DiscoveryQuery q{query, intent, 20};
  auto hits = search.Search(q);
  ASSERT_TRUE(hits.ok());
  size_t found = 0;
  for (const std::string& t : truth) {
    if (HasHit(*hits, t)) ++found;
  }
  if (!truth.empty()) {
    EXPECT_GE(found * 10, truth.size() * 7)
        << "recall@20 below 0.7 on joinable ground truth (" << found << "/"
        << truth.size() << ")";
  }
}

// ---------------------------------------------------------------- JOSIE

TEST(JosieTest, ExactOverlapRanking) {
  DataLake lake = paper::MakeDemoLake(0);
  JosieSearch josie;
  ASSERT_TRUE(josie.BuildIndex(lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, /*query_column=*/1, /*k=*/5};
  auto hits = josie.Search(q);
  ASSERT_TRUE(hits.ok());
  // T3 shares {berlin, barcelona} with the query city column: overlap 2.
  ASSERT_TRUE(HasHit(*hits, "T3"));
  EXPECT_DOUBLE_EQ((*hits)[RankOf(*hits, "T3")].score, 2.0);
  EXPECT_FALSE(HasHit(*hits, "T2"));
}

TEST(JosieTest, MinOverlapFilters) {
  DataLake lake = paper::MakeDemoLake(0);
  JosieSearch::Params p;
  p.min_overlap = 3;
  JosieSearch josie(p);
  ASSERT_TRUE(josie.BuildIndex(lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 5};
  auto hits = josie.Search(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(HasHit(*hits, "T3"));  // overlap 2 < 3
}

TEST(JosieTest, AgreesWithExactContainmentOnLake) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 4;
  p.domains = {"country_facts"};
  p.null_rate = 0.0;
  auto out = SyntheticLakeGenerator(p).Generate();
  JosieSearch josie;
  ASSERT_TRUE(josie.BuildIndex(out.lake).ok());
  const Table* query = out.lake.Get("country_facts_frag0");
  ASSERT_NE(query, nullptr);
  DiscoveryQuery q{query, 0, 10};
  auto hits = josie.Search(q);
  ASSERT_TRUE(hits.ok());
  // Every reported overlap must be achievable: score <= |Q|.
  size_t qsize = ColumnTokens(query->column(0)).size();
  for (const DiscoveryHit& h : *hits) {
    EXPECT_LE(h.score, static_cast<double>(qsize));
    EXPECT_GE(h.score, 1.0);
  }
}

// ----------------------------------------------------- Custom similarity

TEST(CustomSearchTest, NaturalInnerJoinSize) {
  Table a("a", Schema::FromNames({"City", "X"}));
  (void)a.AddRow({Value::String("Berlin"), Value::Int(1)});
  (void)a.AddRow({Value::String("Boston"), Value::Int(2)});
  (void)a.AddRow({Value::String("Paris"), Value::Int(3)});
  Table b("b", Schema::FromNames({"City", "Y"}));
  (void)b.AddRow({Value::String("Berlin"), Value::Int(10)});
  (void)b.AddRow({Value::String("Boston"), Value::Int(20)});
  (void)b.AddRow({Value::String("Tokyo"), Value::Int(30)});
  EXPECT_EQ(NaturalInnerJoinSize(a, b), 2u);
  // No shared columns -> 0.
  Table c("c", Schema::FromNames({"Z"}));
  (void)c.AddRow({Value::Int(1)});
  EXPECT_EQ(NaturalInnerJoinSize(a, c), 0u);
}

TEST(CustomSearchTest, JoinDuplicatesMultiply) {
  Table a("a", Schema::FromNames({"k"}));
  (void)a.AddRow({Value::String("x")});
  (void)a.AddRow({Value::String("x")});
  Table b("b", Schema::FromNames({"k"}));
  (void)b.AddRow({Value::String("x")});
  (void)b.AddRow({Value::String("x")});
  (void)b.AddRow({Value::String("x")});
  EXPECT_EQ(NaturalInnerJoinSize(a, b), 6u);  // 2 x 3, pandas semantics
}

TEST(CustomSearchTest, NullKeysNeverJoin) {
  Table a("a", Schema::FromNames({"k"}));
  (void)a.AddRow({Value::Null()});
  Table b("b", Schema::FromNames({"k"}));
  (void)b.AddRow({Value::Null()});
  EXPECT_EQ(NaturalInnerJoinSize(a, b), 0u);
}

TEST(CustomSearchTest, InnerJoinSimilarityMatchesFig4) {
  Table a("a", Schema::FromNames({"City"}));
  (void)a.AddRow({Value::String("Berlin")});
  (void)a.AddRow({Value::String("Boston")});
  Table b("b", Schema::FromNames({"City"}));
  (void)b.AddRow({Value::String("Berlin")});
  (void)b.AddRow({Value::String("Rome")});
  (void)b.AddRow({Value::String("Lima")});
  // join size 1, max(len) 3 -> 1/3.
  EXPECT_NEAR(InnerJoinSimilarity(a, b), 1.0 / 3.0, 1e-12);
}

TEST(CustomSearchTest, WorksAsDiscoveryAlgorithm) {
  DataLake lake = paper::MakeDemoLake(0);
  SimilarityFunctionSearch search("fig4_join", InnerJoinSimilarity);
  ASSERT_TRUE(search.BuildIndex(lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 0, 5};
  auto hits = search.Search(q);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  // T3 shares the City column with 2 joinable rows out of max(3,4)=4.
  ASSERT_TRUE(HasHit(*hits, "T3"));
  EXPECT_NEAR((*hits)[RankOf(*hits, "T3")].score, 0.5, 1e-12);
  EXPECT_EQ(search.name(), "fig4_join");
}

TEST(CustomSearchTest, EmptyFunctionIsError) {
  DataLake lake = paper::MakeDemoLake(0);
  SimilarityFunctionSearch search("broken", TableSimilarityFn());
  ASSERT_TRUE(search.BuildIndex(lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 0, 5};
  EXPECT_FALSE(search.Search(q).ok());
}

}  // namespace
}  // namespace dialite
