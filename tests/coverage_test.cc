/// Additional coverage for substrate corners: alternative CSV delimiters,
/// multi-key grouping, Value ordering laws, LSH S-curve behavior, and
/// pretty-printing.

#include <gtest/gtest.h>

#include <vector>

#include "analyze/aggregate.h"
#include "sketch/lsh_index.h"
#include "table/csv.h"
#include "table/table.h"

namespace dialite {
namespace {

// -------------------------------------------------------------- CSV extras

TEST(CsvDelimiterTest, SemicolonDelimited) {
  CsvOptions opt;
  opt.delimiter = ';';
  auto r = CsvReader::Parse("a;b\n1;x,y\n", "t", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 0).as_int(), 1);
  EXPECT_EQ(r->at(0, 1).as_string(), "x,y");  // comma is data now
  // Round trip with the same delimiter.
  std::string csv = CsvWriter::ToString(*r, opt);
  auto back = CsvReader::Parse(csv, "t2", opt);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(r->SameRowsAs(*back));
}

TEST(CsvDelimiterTest, TabDelimited) {
  CsvOptions opt;
  opt.delimiter = '\t';
  auto r = CsvReader::Parse("a\tb\nBerlin\t42\n", "t", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 0).as_string(), "Berlin");
  EXPECT_EQ(r->at(0, 1).as_int(), 42);
}

TEST(CsvHeaderTrimTest, HeaderWhitespaceTrimmed) {
  auto r = CsvReader::Parse("  a  , b \n1,2\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().column(0).name, "a");
  EXPECT_EQ(r->schema().column(1).name, "b");
}

// ------------------------------------------------------- aggregate extras

TEST(AggregateMultiKeyTest, GroupByTwoColumns) {
  Table t("t", Schema::FromNames({"g1", "g2", "v"}));
  (void)t.AddRow({Value::String("a"), Value::String("x"), Value::Int(1)});
  (void)t.AddRow({Value::String("a"), Value::String("y"), Value::Int(2)});
  (void)t.AddRow({Value::String("a"), Value::String("x"), Value::Int(3)});
  (void)t.AddRow({Value::String("b"), Value::String("x"), Value::Int(4)});
  auto r = Aggregate(t, {"g1", "g2"}, {{AggFn::kSum, "v", "s"}});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 3u);
  // Sorted: (a,x)=4, (a,y)=2, (b,x)=4.
  EXPECT_EQ(r->at(0, 0).as_string(), "a");
  EXPECT_EQ(r->at(0, 1).as_string(), "x");
  EXPECT_DOUBLE_EQ(r->at(0, 2).as_double(), 4.0);
  EXPECT_DOUBLE_EQ(r->at(1, 2).as_double(), 2.0);
  EXPECT_EQ(r->at(2, 0).as_string(), "b");
}

TEST(AggregateMultiKeyTest, NonNumericCellsSkippedInNumericAggs) {
  Table t("t", Schema::FromNames({"v"}));
  (void)t.AddRow({Value::Int(10)});
  (void)t.AddRow({Value::String("not a number at all")});
  (void)t.AddRow({Value::Int(20)});
  auto r = Aggregate(t, {}, {{AggFn::kAvg, "v", ""}, {AggFn::kCount, "v", ""}});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->at(0, 0).as_double(), 15.0);
  EXPECT_EQ(r->at(0, 1).as_int(), 3);  // count counts non-null, not numeric
}

// ------------------------------------------------------ Value order laws

TEST(ValueOrderTest, StrictWeakOrderingSpotChecks) {
  std::vector<Value> vals = {Value::Null(),        Value::ProducedNull(),
                             Value::Int(-5),       Value::Int(0),
                             Value::Double(0.5),   Value::Int(3),
                             Value::String(""),    Value::String("a"),
                             Value::String("b")};
  // Irreflexivity and antisymmetry over the whole set.
  for (const Value& a : vals) {
    EXPECT_FALSE(a < a);
    for (const Value& b : vals) {
      EXPECT_FALSE(a < b && b < a);
    }
  }
  // Transitivity across the category boundaries.
  EXPECT_TRUE(Value::Null() < Value::Int(-5));
  EXPECT_TRUE(Value::Int(-5) < Value::String(""));
  EXPECT_TRUE(Value::Null() < Value::String(""));
}

TEST(ValueOrderTest, SortingMixedVectorIsStablyOrdered) {
  std::vector<Value> vals = {Value::String("zebra"), Value::Int(7),
                             Value::Null(), Value::Double(2.5),
                             Value::String("apple"), Value::ProducedNull()};
  std::sort(vals.begin(), vals.end());
  EXPECT_TRUE(vals[0].is_null());
  EXPECT_TRUE(vals[1].is_null());
  EXPECT_DOUBLE_EQ(vals[2].as_double(), 2.5);
  EXPECT_EQ(vals[3].as_int(), 7);
  EXPECT_EQ(vals[4].as_string(), "apple");
  EXPECT_EQ(vals[5].as_string(), "zebra");
}

// ----------------------------------------------------------- LSH S-curve

class SCurveSweep : public ::testing::TestWithParam<double> {};

TEST_P(SCurveSweep, CollisionProbabilityIsMonotoneInSimilarity) {
  double s = GetParam();
  double prev = LshIndex::CollisionProbability(s, 16, 8);
  double next = LshIndex::CollisionProbability(s + 0.05, 16, 8);
  EXPECT_LE(prev, next);
  // More bands at fixed rows -> more collisions.
  EXPECT_LE(LshIndex::CollisionProbability(s, 8, 8),
            LshIndex::CollisionProbability(s, 32, 8));
  // More rows at fixed bands -> fewer collisions.
  EXPECT_GE(LshIndex::CollisionProbability(s, 16, 2),
            LshIndex::CollisionProbability(s, 16, 16));
}

INSTANTIATE_TEST_SUITE_P(Similarities, SCurveSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// -------------------------------------------------------- pretty printing

TEST(PrettyPrintTest, TruncationNotice) {
  Table t("t", Schema::FromNames({"v"}));
  for (int i = 0; i < 10; ++i) (void)t.AddRow({Value::Int(i)});
  std::string s = t.ToPrettyString(/*max_rows=*/3);
  EXPECT_NE(s.find("7 more rows"), std::string::npos);
}

TEST(PrettyPrintTest, UnnamedColumnPlaceholder) {
  Table t("t", Schema::FromNames({""}));
  (void)t.AddRow({Value::Int(1)});
  EXPECT_NE(t.ToPrettyString().find("(unnamed)"), std::string::npos);
}

}  // namespace
}  // namespace dialite
