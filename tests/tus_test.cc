/// Tests for the TUS (Table Union Search) ensemble baseline.

#include <gtest/gtest.h>

#include <algorithm>

#include "discovery/tus.h"
#include "lake/lake_generator.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

bool HasHit(const std::vector<DiscoveryHit>& hits, const std::string& name) {
  return std::any_of(hits.begin(), hits.end(), [&](const DiscoveryHit& h) {
    return h.table_name == name;
  });
}

TEST(TusUnionabilityTest, SetMeasureDominatesOnOverlap) {
  Table a("a", Schema::FromNames({"c"}));
  Table b("b", Schema::FromNames({"c"}));
  for (int i = 0; i < 10; ++i) {
    (void)a.AddRow({Value::String("zq_v" + std::to_string(i))});
    (void)b.AddRow({Value::String("zq_v" + std::to_string(i))});
  }
  TusSearch tus;
  auto pa = tus.ProfileColumn(a, 0);
  auto pb = tus.ProfileColumn(b, 0);
  // Identical made-up values: set measure gives 1.0 even with no KB types.
  EXPECT_TRUE(pa.types.empty());
  EXPECT_DOUBLE_EQ(tus.Unionability(pa, pb), 1.0);
}

TEST(TusUnionabilityTest, SemanticMeasureCarriesDisjointValues) {
  Table a("a", Schema::FromNames({"c"}));
  (void)a.AddRow({Value::String("Berlin")});
  (void)a.AddRow({Value::String("Madrid")});
  Table b("b", Schema::FromNames({"c"}));
  (void)b.AddRow({Value::String("Toronto")});
  (void)b.AddRow({Value::String("Boston")});
  TusSearch tus;
  auto pa = tus.ProfileColumn(a, 0);
  auto pb = tus.ProfileColumn(b, 0);
  // Disjoint values, but both columns annotate as city/location.
  EXPECT_GT(tus.Unionability(pa, pb), 0.8);
}

TEST(TusUnionabilityTest, UnrelatedColumnsScoreLow) {
  Table a("a", Schema::FromNames({"c"}));
  (void)a.AddRow({Value::String("Berlin")});
  (void)a.AddRow({Value::String("Madrid")});
  Table b("b", Schema::FromNames({"c"}));
  (void)b.AddRow({Value::String("73%")});
  (void)b.AddRow({Value::String("21%")});
  TusSearch tus;
  EXPECT_LT(tus.Unionability(tus.ProfileColumn(a, 0), tus.ProfileColumn(b, 0)),
            0.4);
}

TEST(TusPaperTest, FindsT2ForT1) {
  DataLake lake = paper::MakeDemoLake(16);
  TusSearch tus;
  ASSERT_TRUE(tus.BuildIndex(lake).ok());
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 5};
  auto hits = tus.Search(q);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits->empty());
  EXPECT_TRUE(HasHit(*hits, "T2"));
  // T2 (3/3 columns unionable) must outrank T3 (1-2 of 3).
  size_t rank_t2 = 99;
  size_t rank_t3 = 99;
  for (size_t i = 0; i < hits->size(); ++i) {
    if ((*hits)[i].table_name == "T2") rank_t2 = i;
    if ((*hits)[i].table_name == "T3") rank_t3 = i;
  }
  EXPECT_LT(rank_t2, rank_t3);
}

TEST(TusLakeTest, UnionableRecallOnGroundTruth) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 5;
  p.header_noise = 1.0;
  p.domains = {"country_facts", "football_clubs"};
  auto out = SyntheticLakeGenerator(p).Generate();
  TusSearch tus;
  ASSERT_TRUE(tus.BuildIndex(out.lake).ok());
  const Table* query = out.lake.Get("country_facts_frag0");
  ASSERT_NE(query, nullptr);
  DiscoveryQuery q{query, 0, 9};
  auto hits = tus.Search(q);
  ASSERT_TRUE(hits.ok());
  std::vector<std::string> truth = out.truth.UnionableWith(query->name());
  size_t found = 0;
  for (const std::string& t : truth) {
    if (HasHit(*hits, t)) ++found;
  }
  EXPECT_GE(found * 2, truth.size())
      << found << "/" << truth.size() << " unionable fragments found";
}

TEST(TusTest, SearchValidation) {
  TusSearch fresh;
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 5};
  EXPECT_FALSE(fresh.Search(q).ok());  // no index
  DataLake lake = paper::MakeDemoLake(0);
  ASSERT_TRUE(fresh.BuildIndex(lake).ok());
  DiscoveryQuery bad{&query, 99, 5};
  EXPECT_FALSE(fresh.Search(bad).ok());
  DiscoveryQuery null_t{nullptr, 0, 5};
  EXPECT_FALSE(fresh.Search(null_t).ok());
}

}  // namespace
}  // namespace dialite
