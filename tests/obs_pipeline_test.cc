#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "align/alite_matcher.h"
#include "core/dialite.h"
#include "integrate/full_disjunction.h"
#include "lake/paper_fixtures.h"
#include "table/csv.h"

namespace dialite {
namespace {

/// One pipeline run with observability installed must surface every stage —
/// discovery builds and searches, alignment, integration, analyses, thread
/// pool, sketch cache — in a single JSON export.
class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake_ = paper::MakeDemoLake(8);
    dialite_ = std::make_unique<Dialite>(&lake_);
    ASSERT_TRUE(dialite_->RegisterDefaults().ok());
    dialite_->set_observability(&obs_);
    query_ = paper::MakeT1();
  }
  DataLake lake_;
  std::unique_ptr<Dialite> dialite_;
  ObservabilityContext obs_;
  Table query_;
};

TEST_F(ObsPipelineTest, EveryStageLandsInOneExport) {
  // Force the parallel build path even on single-core CI runners so the
  // thread-pool instrumentation is exercised.
  dialite_->set_num_threads(2);
  ASSERT_TRUE(dialite_->BuildIndexes().ok());
  PipelineOptions opts;
  opts.query_column = 1;
  opts.k = 5;
  opts.analyses = {"summary"};
  auto report = dialite_->Run(query_, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const Metrics& m = obs_.metrics();
  const Tracer& t = obs_.tracer();

  // Offline phase: every registered builder emitted a build counter and a
  // span, and the thread pool + sketch cache reported in.
  for (const char* algo : {"santos", "josie", "lsh_ensemble", "starmie",
                           "cocoa", "tus", "keyword"}) {
    EXPECT_GT(m.CounterValue("discover." + std::string(algo) +
                             ".build.tables"), 0u)
        << algo;
    EXPECT_TRUE(t.HasSpan("build." + std::string(algo))) << algo;
  }
  EXPECT_GT(m.CounterValue("threadpool.tasks_run"), 0u);
  EXPECT_TRUE(m.HasHistogram("threadpool.queue_depth"));
  EXPECT_TRUE(m.HasHistogram("threadpool.task_wait_ns"));
  EXPECT_GT(m.CounterValue("sketch_cache.token_set.misses"), 0u);
  EXPECT_GT(m.CounterValue("sketch_cache.token_set.hits"), 0u);

  // Online phase: facade spans plus per-stage instrumentation.
  EXPECT_TRUE(t.HasSpan("pipeline.build_indexes"));
  EXPECT_TRUE(t.HasSpan("pipeline.run"));
  EXPECT_TRUE(t.HasSpan("pipeline.discover"));
  EXPECT_TRUE(t.HasSpan("pipeline.align_integrate"));
  EXPECT_TRUE(t.HasSpan("pipeline.analyze"));
  EXPECT_TRUE(t.HasSpan("discover.santos"));
  EXPECT_GT(m.CounterValue("discover.searches"), 0u);
  EXPECT_GT(m.CounterValue("pipeline.integration_set_size"), 0u);

  // Align: the holistic matcher's spans and tallies.
  EXPECT_TRUE(t.HasSpan("align.alite_holistic"));
  EXPECT_TRUE(t.HasSpan("align.signatures"));
  EXPECT_TRUE(t.HasSpan("align.similarity_matrix"));
  EXPECT_TRUE(t.HasSpan("align.cluster"));
  EXPECT_GT(m.CounterValue("align.tables"), 0u);
  EXPECT_GT(m.CounterValue("align.columns"), 0u);
  EXPECT_GT(m.CounterValue("align.pair_evals"), 0u);
  EXPECT_GT(m.CounterValue("align.clusters"), 0u);

  // Integrate: FD counters (rows scanned / produced nulls / subsumed /
  // fix-point iterations) plus the integration spans.
  EXPECT_TRUE(t.HasSpan("integrate.full_disjunction"));
  EXPECT_TRUE(t.HasSpan("integrate.fd.fixpoint"));
  EXPECT_TRUE(t.HasSpan("integrate.fd.subsumption"));
  EXPECT_GT(m.CounterValue("integrate.fd.input_rows"), 0u);
  EXPECT_GT(m.CounterValue("integrate.fd.output_rows"), 0u);
  EXPECT_GT(m.CounterValue("integrate.fd.produced_nulls"), 0u);
  EXPECT_GT(m.CounterValue("integrate.fd.fixpoint_iterations"), 0u);

  // Analyze.
  EXPECT_TRUE(t.HasSpan("analyze.summary"));
  EXPECT_GT(m.CounterValue("analyze.rows_in"), 0u);

  // And all of it is in ONE JSON document.
  std::string json = obs_.ToJson();
  for (const char* needle :
       {"\"counters\":{", "\"histograms\":{", "\"spans\":[",
        "discover.santos.build.tables", "threadpool.tasks_run",
        "sketch_cache.token_set.misses", "align.pair_evals",
        "integrate.fd.produced_nulls", "pipeline.integration_set_size",
        "\"name\":\"pipeline.run\"", "\"name\":\"align.alite_holistic\"",
        "\"name\":\"integrate.full_disjunction\"",
        "\"name\":\"analyze.summary\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST_F(ObsPipelineTest, DisabledContextEmitsNothing) {
  dialite_->set_observability(nullptr);
  ASSERT_TRUE(dialite_->BuildIndexes().ok());
  PipelineOptions opts;
  opts.query_column = 1;
  auto report = dialite_->Run(query_, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(obs_.ToJson(),
            "{\"counters\":{},\"histograms\":{},\"spans\":[]}");
}

TEST_F(ObsPipelineTest, PerRunOverrideCapturesFacadeSpans) {
  dialite_->set_observability(nullptr);
  ASSERT_TRUE(dialite_->BuildIndexes().ok());
  ObservabilityContext run_obs;
  PipelineOptions opts;
  opts.query_column = 1;
  opts.observability = &run_obs;
  auto report = dialite_->Run(query_, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(run_obs.tracer().HasSpan("pipeline.run"));
  EXPECT_GT(run_obs.metrics().CounterValue("pipeline.integration_set_size"),
            0u);
}

TEST_F(ObsPipelineTest, ResultsIdenticalWithAndWithoutObservability) {
  // Observability must never change pipeline output.
  ASSERT_TRUE(dialite_->BuildIndexes().ok());
  PipelineOptions opts;
  opts.query_column = 1;
  opts.k = 5;
  auto with_obs = dialite_->Run(query_, opts);
  ASSERT_TRUE(with_obs.ok());

  Dialite plain(&lake_);
  ASSERT_TRUE(plain.RegisterDefaults().ok());
  ASSERT_TRUE(plain.BuildIndexes().ok());
  auto without = plain.Run(query_, opts);
  ASSERT_TRUE(without.ok());

  EXPECT_EQ(with_obs->integration_set, without->integration_set);
  EXPECT_EQ(with_obs->integration.table.num_rows(),
            without->integration.table.num_rows());
  EXPECT_EQ(CsvWriter::ToString(with_obs->integration.table),
            CsvWriter::ToString(without->integration.table));
}

// Direct component usage (no facade): matcher + FD with obs wired by hand,
// the way the benches do it.
TEST(ObsComponentTest, MatcherAndFdStandalone) {
  Table t1 = paper::MakeT1();
  Table t2 = paper::MakeT2();
  Table t3 = paper::MakeT3();
  std::vector<const Table*> tables = {&t1, &t2, &t3};

  ObservabilityContext obs;
  AliteMatcher matcher;
  matcher.set_observability(&obs);
  auto alignment = matcher.Align(tables);
  ASSERT_TRUE(alignment.ok());

  FullDisjunction fd;
  fd.set_observability(&obs);
  auto result = fd.Integrate(tables, *alignment);
  ASSERT_TRUE(result.ok());

  EXPECT_TRUE(obs.tracer().HasSpan("align.alite_holistic"));
  EXPECT_TRUE(obs.tracer().HasSpan("integrate.full_disjunction"));
  EXPECT_GT(obs.metrics().CounterValue("integrate.fd.input_rows"), 0u);
}

// CSV ingest instrumentation.
TEST(ObsCsvTest, ParseEmitsIngestCounters) {
  ObservabilityContext obs;
  CsvOptions opts;
  opts.observability = &obs;
  const char* csv =
      "name,age,score\n"
      "alice,30,1.5\n"
      "bob,NA,2.5\n"
      "carol,40,not_a_number\n";
  auto t = CsvReader::Parse(csv, "people", opts);
  ASSERT_TRUE(t.ok());
  const Metrics& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("csv.records"), 4u);  // header + 3 rows
  EXPECT_EQ(m.CounterValue("csv.rows"), 3u);
  EXPECT_EQ(m.CounterValue("csv.cells"), 9u);
  EXPECT_EQ(m.CounterValue("csv.null_cells"), 1u);       // NA
  EXPECT_EQ(m.CounterValue("csv.na_coercions"), 1u);     // NA
  // alice/bob/carol/not_a_number stayed strings after inference.
  EXPECT_EQ(m.CounterValue("csv.inference_fallbacks"), 4u);
  EXPECT_TRUE(obs.tracer().HasSpan("csv.parse"));
  EXPECT_TRUE(m.HasHistogram("csv.table_rows"));
}

}  // namespace
}  // namespace dialite
