#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <clocale>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/fd_util.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace dialite {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::IoError("").code(),        Status::ParseError("").code(),
      Status::TypeMismatch("").code(),   Status::Internal("").code(),
      Status::NotImplemented("").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    DIALITE_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("abc");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "abc");
}

// ---------------------------------------------------------------- Hash

TEST(HashTest, StringHashIsDeterministic) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
}

TEST(HashTest, SeedSelectsIndependentFunctions) {
  EXPECT_NE(HashString("hello", 1), HashString("hello", 2));
  EXPECT_NE(HashUint64(7, 1), HashUint64(7, 2));
}

TEST(HashTest, Mix64ChangesInput) {
  EXPECT_NE(Mix64(0), 0u);
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(HashTest, EmptyStringHashes) {
  EXPECT_EQ(HashString(""), HashString(""));
  EXPECT_NE(HashString("", 1), HashString("", 2));
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng r(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(11);
  double mean = 0.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    mean += d;
  }
  mean /= kN;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng r(13);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = r.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, ShufflePermutes) {
  Rng r(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng r(19);
  std::vector<size_t> s = r.SampleIndices(100, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (size_t i : s) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesClampsToN) {
  Rng r(21);
  EXPECT_EQ(r.SampleIndices(3, 10).size(), 3u);
}

// ---------------------------------------------------------------- Strings

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo 42"), "hello 42");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, AffixChecks) {
  EXPECT_TRUE(StartsWith("table.csv", "table"));
  EXPECT_FALSE(StartsWith("t", "table"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringUtilTest, CaseInsensitive) {
  EXPECT_TRUE(EqualsIgnoreCase("USA", "usa"));
  EXPECT_FALSE(EqualsIgnoreCase("USA", "us"));
  EXPECT_TRUE(ContainsIgnoreCase("United States", "states"));
  EXPECT_FALSE(ContainsIgnoreCase("United", "states"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14), "3.14");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(-1.25), "-1.25");
  // Not "-0": integer-looking text would be re-inferred as Int(0) on a CSV
  // reparse, changing the rendering (found by fuzz_csv_roundtrip).
  EXPECT_EQ(FormatDouble(-0.0), "-0.0");
}

// Regression (found by fuzz_csv_roundtrip): the old "%.*f" implementation
// truncated magnitudes whose fixed notation overflowed its 64-byte buffer
// (2e134 needs 135 integer digits) and rounded away sub-precision digits,
// so FormatDouble -> ParseStrictNumeric changed the value. Formatting must
// be exact for every double, including extremes and denormals.
TEST(StringUtilTest, FormatDoubleRoundTripsExactly) {
  const double cases[] = {
      2e134,                     // fixed notation would need 135 digits
      1.0 / 3.0,                 // needs 17 significant digits
      0.30000000000000004,       // classic 0.1 + 0.2 artifact
      5e-324,                    // smallest denormal
      1.7976931348623157e308,    // largest finite double
      -6.02214076e23,
      0.1,
  };
  for (double v : cases) {
    const std::string s = FormatDouble(v);
    double back = 0;
    ASSERT_TRUE(ParseStrictNumeric(s, &back)) << s;
    EXPECT_EQ(back, v) << s;
  }
}

// ---------------------------------------------------------------- Pool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}


// ------------------------------------------------- ParseStrictNumeric

TEST(ParseStrictNumericTest, AcceptsFiniteDecimals) {
  double v = 0.0;
  EXPECT_TRUE(ParseStrictNumeric("42", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
  EXPECT_TRUE(ParseStrictNumeric("-7.5", &v));
  EXPECT_DOUBLE_EQ(v, -7.5);
  EXPECT_TRUE(ParseStrictNumeric("+3", &v));
  EXPECT_DOUBLE_EQ(v, 3.0);
  EXPECT_TRUE(ParseStrictNumeric(".5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(ParseStrictNumeric("2.", &v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_TRUE(ParseStrictNumeric("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_TRUE(ParseStrictNumeric("6.02E+23", &v));
  EXPECT_TRUE(ParseStrictNumeric("1e-3", &v));
  EXPECT_DOUBLE_EQ(v, 0.001);
  EXPECT_TRUE(ParseStrictNumeric("  42  ", &v));  // surrounding whitespace
  EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(ParseStrictNumericTest, RejectsStrtodExtras) {
  // strtod accepts all of these; the strict grammar must not.
  double v = 0.0;
  EXPECT_FALSE(ParseStrictNumeric("0x1A", &v));     // hex float
  EXPECT_FALSE(ParseStrictNumeric("0X1p4", &v));    // hex float with exponent
  EXPECT_FALSE(ParseStrictNumeric("inf", &v));
  EXPECT_FALSE(ParseStrictNumeric("-inf", &v));
  EXPECT_FALSE(ParseStrictNumeric("infinity", &v));
  EXPECT_FALSE(ParseStrictNumeric("nan", &v));
  EXPECT_FALSE(ParseStrictNumeric("nan(0x1)", &v));
  EXPECT_FALSE(ParseStrictNumeric("1e999", &v));    // overflows to +inf
  EXPECT_FALSE(ParseStrictNumeric("-1e999", &v));
}

TEST(ParseStrictNumericTest, RejectsMalformed) {
  double v = 0.0;
  EXPECT_FALSE(ParseStrictNumeric("", &v));
  EXPECT_FALSE(ParseStrictNumeric("   ", &v));
  EXPECT_FALSE(ParseStrictNumeric(".", &v));
  EXPECT_FALSE(ParseStrictNumeric("+", &v));
  EXPECT_FALSE(ParseStrictNumeric("e5", &v));
  EXPECT_FALSE(ParseStrictNumeric("1e", &v));
  EXPECT_FALSE(ParseStrictNumeric("1e+", &v));
  EXPECT_FALSE(ParseStrictNumeric("1.2.3", &v));
  EXPECT_FALSE(ParseStrictNumeric("12abc", &v));
  EXPECT_FALSE(ParseStrictNumeric("1 2", &v));
  EXPECT_FALSE(ParseStrictNumeric("--5", &v));
}

/// Installs a comma-decimal locale for one test; skips when the container
/// has no such locale installed. Restores the previous locale on scope
/// exit so later tests see the default "C" behavior again.
class ScopedCommaLocale {
 public:
  ScopedCommaLocale() {
    previous_ = std::setlocale(LC_ALL, nullptr);
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                             "fr_FR.utf8"}) {
      if (std::setlocale(LC_ALL, name) != nullptr) {
        installed_ = true;
        return;
      }
    }
  }
  ~ScopedCommaLocale() { std::setlocale(LC_ALL, previous_.c_str()); }
  [[nodiscard]] bool installed() const { return installed_; }

 private:
  std::string previous_;
  bool installed_ = false;
};

// Regression: ParseStrictNumeric's overflow/subnormal fallback went
// through strtod, which honors the process locale's decimal separator —
// under de_DE "3.14" parsed as 3 (strtod stops at '.'). Parsing must be
// locale-independent.
TEST(ParseStrictNumericTest, LocaleIndependentDecimalSeparator) {
  ScopedCommaLocale locale;
  if (!locale.installed()) {
    GTEST_SKIP() << "no comma-decimal locale installed in this container";
  }
  double v = 0.0;
  ASSERT_TRUE(ParseStrictNumeric("3.14", &v));
  EXPECT_DOUBLE_EQ(v, 3.14);
  // The locale's own separator must NOT become valid.
  EXPECT_FALSE(ParseStrictNumeric("3,14", &v));
  // The subnormal fallback path (from_chars reports result_out_of_range,
  // strtod resolves it) must also survive a comma-decimal locale.
  ASSERT_TRUE(ParseStrictNumeric("4.9406564584124654e-324", &v));
  EXPECT_GT(v, 0.0);
  ASSERT_TRUE(ParseStrictNumeric("1e-310", &v));
  EXPECT_GT(v, 0.0);
  // And formatting stays period-decimal for the JSON/bench emitters.
  double back = 0.0;
  ASSERT_TRUE(ParseStrictNumeric(FormatDouble(0.1), &back));
  EXPECT_DOUBLE_EQ(back, 0.1);
}

// ------------------------------------------------------------- fd_util

TEST(AtomicWriteFileTest, WritesAndReplaces) {
  std::string path = testing::TempDir() + "/atomic_write_test.txt";
  ASSERT_TRUE(AtomicWriteFile(path, "first contents").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "second contents").ok());
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "second contents");
  // No staging file survives a successful replace.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, FailureLeavesOldFileUntouched) {
  std::string path = testing::TempDir() + "/atomic_keep_test.txt";
  ASSERT_TRUE(AtomicWriteFile(path, "precious").ok());
  // A directory squatting on the staging path fails the save before the
  // destination is touched (works even when the suite runs as root,
  // unlike permission tricks).
  const std::string tmp = path + ".tmp";
  ASSERT_EQ(::mkdir(tmp.c_str(), 0755), 0);
  EXPECT_FALSE(AtomicWriteFile(path, "replacement").ok());
  ASSERT_EQ(::rmdir(tmp.c_str()), 0);
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "precious");
  std::remove(path.c_str());
}

TEST(UniqueFdTest, MoveTransfersOwnership) {
  UniqueFd a(::open("/dev/null", O_WRONLY));
  ASSERT_TRUE(a.valid());
  const int raw = a.get();
  UniqueFd b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserting it
  EXPECT_EQ(b.get(), raw);
  b.reset();
  EXPECT_FALSE(b.valid());
}

// --------------------------------------------------------------- cancel

TEST(CancelTokenTest, FiresOnCancelAndStaysFired) {
  CancelToken token;
  EXPECT_FALSE(token.Cancelled());
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_TRUE(token.Cancelled());
}

TEST(CancelTokenTest, ZeroDeadlineFiresImmediately) {
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::nanoseconds(0));
  EXPECT_TRUE(token.Cancelled());
}

TEST(CancelTokenTest, FarDeadlineDoesNotFire) {
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::hours(24));
  EXPECT_FALSE(token.Cancelled());
}

TEST(CancelTokenTest, CancelVisibleAcrossThreads) {
  CancelToken token;
  std::atomic<bool> seen{false};
  ThreadPool pool(2);
  pool.Submit([&] {
    while (!token.Cancelled()) {
    }
    seen.store(true);
  });
  token.Cancel();
  pool.Wait();
  EXPECT_TRUE(seen.load());
}

}  // namespace
}  // namespace dialite
