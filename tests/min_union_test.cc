/// Tests for MinimumUnionIntegration (Galindo-Legaria's minimum union,
/// the paper's reference [6]) and the Dialite facade's index cache.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "align/alite_matcher.h"
#include "core/dialite.h"
#include "integrate/full_disjunction.h"
#include "integrate/join_ops.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

class MinUnionVaccineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t4_ = paper::MakeT4();
    t5_ = paper::MakeT5();
    t6_ = paper::MakeT6();
    tables_ = {&t4_, &t5_, &t6_};
    AliteMatcher matcher;
    auto a = matcher.Align(tables_);
    ASSERT_TRUE(a.ok());
    alignment_ = std::move(a).value();
  }
  Table t4_, t5_, t6_;
  std::vector<const Table*> tables_;
  Alignment alignment_;
};

TEST_F(MinUnionVaccineTest, RemovesSubsumedButNeverConnects) {
  MinimumUnionIntegration mu;
  auto r = mu.Integrate(tables_, alignment_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Outer union has 6 tuples; t12 (JnJ,±,⊥) and t14 (⊥,±,USA) are
  // both subsumed by t16's rekeyed row (JnJ,⊥,USA) -> 4 maximal tuples.
  EXPECT_EQ(r->num_rows(), 4u) << r->ToPrettyString();
  // The J&J↔FDA connection requires complementation, which minimum union
  // does not perform.
  for (size_t row = 0; row < r->num_rows(); ++row) {
    bool jnj = false;
    bool fda = false;
    for (size_t c = 0; c < r->num_columns(); ++c) {
      if (r->at(row, c).is_null()) continue;
      std::string s = r->at(row, c).ToCsvString();
      if (s == "J&J") jnj = true;
      if (s == "FDA") fda = true;
    }
    EXPECT_FALSE(jnj && fda);
  }
}

TEST_F(MinUnionVaccineTest, SitsBetweenUnionAndFd) {
  auto u = UnionIntegration().Integrate(tables_, alignment_);
  auto mu = MinimumUnionIntegration().Integrate(tables_, alignment_);
  auto fd = FullDisjunction().Integrate(tables_, alignment_);
  ASSERT_TRUE(u.ok());
  ASSERT_TRUE(mu.ok());
  ASSERT_TRUE(fd.ok());
  // union (6) >= minimum union (5) >= fd (3) on this set.
  EXPECT_GE(u->num_rows(), mu->num_rows());
  EXPECT_GE(mu->num_rows(), fd->num_rows());
  // Every minimum-union tuple is subsumed by some FD tuple.
  for (size_t i = 0; i < mu->num_rows(); ++i) {
    bool covered = false;
    for (size_t j = 0; j < fd->num_rows() && !covered; ++j) {
      covered = TupleSubsumedBy(mu->row(i), fd->row(j));
    }
    EXPECT_TRUE(covered) << i;
  }
}

TEST(MinUnionTest, IdentityWhenNothingSubsumes) {
  Table a("A", Schema::FromNames({"x"}));
  (void)a.AddRow({Value::String("p")});
  Table b("B", Schema::FromNames({"x"}));
  (void)b.AddRow({Value::String("q")});
  ManualAlignment manual({{{"A", 0}, {"B", 0}}});
  auto align = manual.Align({&a, &b});
  ASSERT_TRUE(align.ok());
  std::vector<const Table*> tables = {&a, &b};
  auto r = MinimumUnionIntegration().Integrate(tables, *align);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(MinUnionTest, RegisteredInDefaults) {
  DataLake lake = paper::MakeDemoLake(0);
  Dialite d(&lake);
  ASSERT_TRUE(d.RegisterDefaults().ok());
  auto ops = d.IntegrationOperators();
  EXPECT_NE(std::find(ops.begin(), ops.end(), "minimum_union"), ops.end());
}

// ------------------------------------------------------------ index cache

TEST(IndexCacheTest, BuildSavesAndSecondBuildLoads) {
  std::string dir = testing::TempDir() + "/dialite_idx_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DataLake lake = paper::MakeDemoLake(8);
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 5};

  Dialite first(&lake);
  ASSERT_TRUE(first.RegisterDefaults().ok());
  ASSERT_TRUE(first.BuildIndexes(dir).ok());
  // The persistent algorithms wrote their cache files.
  EXPECT_TRUE(std::filesystem::exists(dir + "/santos.idx"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/josie.idx"));
  auto h1 = first.Discover(q, "santos");
  ASSERT_TRUE(h1.ok());

  // A fresh instance loads from cache and answers identically.
  Dialite second(&lake);
  ASSERT_TRUE(second.RegisterDefaults().ok());
  ASSERT_TRUE(second.BuildIndexes(dir).ok());
  auto h2 = second.Discover(q, "santos");
  ASSERT_TRUE(h2.ok());
  ASSERT_EQ(h1->size(), h2->size());
  for (size_t i = 0; i < h1->size(); ++i) {
    EXPECT_EQ((*h1)[i].table_name, (*h2)[i].table_name);
  }
  std::filesystem::remove_all(dir);
}

TEST(IndexCacheTest, CorruptCacheFallsBackToBuild) {
  std::string dir = testing::TempDir() + "/dialite_idx_corrupt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream bad(dir + "/josie.idx");
    bad << "garbage\n";
  }
  DataLake lake = paper::MakeDemoLake(0);
  Dialite d(&lake);
  ASSERT_TRUE(d.RegisterDefaults().ok());
  ASSERT_TRUE(d.BuildIndexes(dir).ok());  // rebuilds, overwrites cache
  Table query = paper::MakeT1();
  DiscoveryQuery q{&query, 1, 5};
  auto hits = d.Discover(q, "josie");
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->empty());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dialite
