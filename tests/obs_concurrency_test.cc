#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/dialite.h"
#include "lake/paper_fixtures.h"
#include "obs/observability.h"

namespace dialite {
namespace {

// These tests hammer one ObservabilityContext from many threads; they run
// under the "concurrency" ctest label so CI exercises them under TSan.

TEST(ObsConcurrencyTest, CountersAreExactUnderContention) {
  ObservabilityContext obs;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&obs] {
      Counter* c = ObsCounter(&obs, "shared.counter");
      for (size_t i = 0; i < kPerThread; ++i) {
        c->Add();
        ObsAdd(&obs, "looked.up.counter");
        ObsRecord(&obs, "shared.hist", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(obs.metrics().CounterValue("shared.counter"),
            kThreads * kPerThread);
  EXPECT_EQ(obs.metrics().CounterValue("looked.up.counter"),
            kThreads * kPerThread);
  auto hists = obs.metrics().HistogramSnapshots();
  EXPECT_EQ(hists.at("shared.hist").count, kThreads * kPerThread);
}

TEST(ObsConcurrencyTest, SpansFromManyThreads) {
  ObservabilityContext obs;
  constexpr size_t kThreads = 8;
  constexpr size_t kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&obs] {
      for (size_t i = 0; i < kSpansPerThread; ++i) {
        ObsSpan outer(&obs, "worker.outer");
        ObsSpan inner(&obs, "worker.inner");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Each outer is a root; each inner nests under its same-thread outer.
  EXPECT_EQ(obs.tracer().root_count(), kThreads * kSpansPerThread);
  EXPECT_TRUE(obs.tracer().HasSpan("worker.inner"));
}

TEST(ObsConcurrencyTest, ExportWhileWritersRun) {
  ObservabilityContext obs;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ObsAdd(&obs, "w.counter");
        ObsRecord(&obs, "w.hist", ++i);
        ObsSpan span(&obs, "w.span");
      }
    });
  }
  // Concurrent readers must not tear or race with the writers.
  for (size_t i = 0; i < 50; ++i) {
    std::string json = obs.ToJson();
    EXPECT_FALSE(json.empty());
    std::string tree = obs.ToTreeString();
    (void)tree;
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
}

TEST(ObsConcurrencyTest, InstrumentedThreadPool) {
  ObservabilityContext obs;
  ThreadPool pool(4, &obs);
  std::atomic<size_t> done{0};
  pool.ParallelFor(1000, [&](size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 1000u);
  EXPECT_GT(obs.metrics().CounterValue("threadpool.tasks_run"), 0u);
  EXPECT_TRUE(obs.metrics().HasHistogram("threadpool.queue_depth"));
  EXPECT_TRUE(obs.metrics().HasHistogram("threadpool.task_wait_ns"));
}

TEST(ObsConcurrencyTest, ParallelIndexBuildWithObservability) {
  // The whole offline phase — parallel builders, shared sketch cache,
  // thread pool — writing into one context.
  DataLake lake = paper::MakeDemoLake(6);
  Dialite dialite(&lake);
  ASSERT_TRUE(dialite.RegisterDefaults().ok());
  ObservabilityContext obs;
  dialite.set_observability(&obs);
  dialite.set_num_threads(4);
  ASSERT_TRUE(dialite.BuildIndexes().ok());
  EXPECT_TRUE(obs.tracer().HasSpan("pipeline.build_indexes"));
  EXPECT_TRUE(obs.tracer().HasSpan("build.santos"));
  EXPECT_GT(obs.metrics().CounterValue("discover.santos.build.tables"), 0u);
  EXPECT_GT(obs.metrics().CounterValue("threadpool.tasks_run"), 0u);
  std::string json = obs.ToJson();
  EXPECT_NE(json.find("build.santos"), std::string::npos);
}

}  // namespace
}  // namespace dialite
