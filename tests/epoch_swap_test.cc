/// Concurrency tests (run under TSan via the "concurrency" label) for the
/// serving layer's epoch swap: worker threads hammer Discover — through
/// the raw LakeService handle and through DialiteServer::Handle — while
/// the main thread reloads snapshots in a tight loop. Every request must
/// succeed against a coherent epoch; a pinned epoch must stay valid (mmap
/// included) after an arbitrary number of swaps.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/dialite.h"
#include "lake/paper_fixtures.h"
#include "server/server.h"
#include "server/service.h"
#include "table/csv.h"

namespace dialite {
namespace {

/// Unique per process: ctest runs discovered tests as parallel processes
/// and snapshot files must not collide across them.
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name + "." + std::to_string(::getpid());
}

std::string MakeSnapshot(const std::string& name, size_t distractors) {
  DataLake lake = paper::MakeDemoLake(distractors);
  Dialite system(&lake);
  EXPECT_TRUE(system.RegisterDefaults().ok());
  EXPECT_TRUE(system.BuildIndexes().ok());
  std::string path = TempPath(name);
  EXPECT_TRUE(system.SaveSnapshot(path).ok());
  return path;
}

/// Runs one discovery against `epoch` and checks it answers coherently.
void DiscoverAgainst(const Epoch& epoch, const Table& query_table,
                     std::atomic<size_t>* ok_count) {
  DiscoveryQuery query;
  query.table = &query_table;
  query.k = 5;
  Result<std::vector<DiscoveryHit>> hits =
      epoch.system->dialite->Discover(query, "santos");
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  // Every hit must name a table the pinned epoch's lake actually holds —
  // a torn swap would hand back hits from a different generation.
  for (const DiscoveryHit& hit : *hits) {
    EXPECT_TRUE(epoch.system->lake->Contains(hit.table_name))
        << "hit '" << hit.table_name << "' not in pinned epoch "
        << epoch.id;
  }
  ok_count->fetch_add(1, std::memory_order_relaxed);
}

TEST(EpochSwapTest, ConcurrentDiscoverAcrossReloads) {
  const std::string snap_a = MakeSnapshot("epoch_a.snap", 4);
  const std::string snap_b = MakeSnapshot("epoch_b.snap", 8);
  LakeService service;
  ASSERT_TRUE(service.Open(snap_a).ok());

  const Table query_table = paper::MakeT1();
  constexpr size_t kWorkers = 4;
  constexpr int kReloads = 12;
  std::atomic<bool> stop{false};
  std::atomic<size_t> ok_count{0};

  {
    ThreadPool pool(kWorkers);
    for (size_t w = 0; w < kWorkers; ++w) {
      pool.Submit([&] {
        while (!stop.load(std::memory_order_acquire)) {
          std::shared_ptr<const Epoch> epoch = service.current();
          ASSERT_NE(epoch, nullptr);
          DiscoverAgainst(*epoch, query_table, &ok_count);
        }
      });
    }
    for (int i = 0; i < kReloads; ++i) {
      ASSERT_TRUE(service.Reload(i % 2 == 0 ? snap_b : snap_a).ok());
    }
    stop.store(true, std::memory_order_release);
    pool.Wait();
  }

  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(service.current()->id, 1u + kReloads);
  std::remove(snap_a.c_str());
  std::remove(snap_b.c_str());
}

TEST(EpochSwapTest, PinnedEpochSurvivesSwaps) {
  const std::string snap = MakeSnapshot("epoch_pin.snap", 4);
  LakeService service;
  ASSERT_TRUE(service.Open(snap).ok());

  // Pin epoch 1, then swap it out repeatedly.
  std::shared_ptr<const Epoch> pinned = service.current();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.Reload(snap).ok());
  }
  ASSERT_EQ(service.current()->id, 5u);
  EXPECT_EQ(pinned->id, 1u);

  // The pinned epoch's mmap-backed lake must still answer queries.
  const Table query_table = paper::MakeT1();
  std::atomic<size_t> ok_count{0};
  DiscoverAgainst(*pinned, query_table, &ok_count);
  EXPECT_EQ(ok_count.load(), 1u);
  std::remove(snap.c_str());
}

TEST(EpochSwapTest, ServerHandleDiscoverDuringReloads) {
  const std::string snap = MakeSnapshot("epoch_srv.snap", 4);
  ServerOptions options;
  options.port = 0;
  DialiteServer server(options);
  ASSERT_TRUE(server.Start(snap).ok());

  const std::string query_csv = CsvWriter::ToString(paper::MakeT1());
  constexpr size_t kWorkers = 4;
  constexpr int kReloads = 8;
  std::atomic<bool> stop{false};
  std::atomic<size_t> ok_count{0};

  {
    ThreadPool pool(kWorkers);
    for (size_t w = 0; w < kWorkers; ++w) {
      pool.Submit([&] {
        HttpRequest req;
        req.method = "POST";
        req.path = "/discover";
        req.query = {{"algorithm", "santos"}, {"k", "5"}};
        req.body = query_csv;
        while (!stop.load(std::memory_order_acquire)) {
          HttpResponse resp = server.Handle(req, nullptr);
          ASSERT_EQ(resp.status, 200) << resp.body;
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    HttpRequest reload;
    reload.method = "POST";
    reload.path = "/reload";
    for (int i = 0; i < kReloads; ++i) {
      HttpResponse resp = server.Handle(reload, nullptr);
      ASSERT_EQ(resp.status, 200) << resp.body;
    }
    stop.store(true, std::memory_order_release);
    pool.Wait();
  }

  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(server.lake_service().current()->id, 1u + kReloads);
  server.Shutdown();
  std::remove(snap.c_str());
}

}  // namespace
}  // namespace dialite
