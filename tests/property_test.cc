/// Property-based sweeps (TEST_P) over the library's core invariants:
/// Full Disjunction semantics, sketch accuracy bounds, CSV round-trips,
/// and alignment constraints, across seeds and sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "align/alite_matcher.h"
#include "analyze/entity_resolution.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "integrate/full_disjunction.h"
#include "integrate/join_ops.h"
#include "lake/lake_generator.h"
#include "sketch/lsh_ensemble.h"
#include "sketch/minhash.h"
#include "table/csv.h"
#include "text/similarity.h"

namespace dialite {
namespace {

// ------------------------------------------------------- FD invariants

/// A randomized integration set: K entities with a key and four
/// attributes, split into three overlapping fragments with nulls.
std::vector<Table> RandomFragments(uint64_t seed) {
  Rng rng(seed);
  size_t entities = 15 + rng.NextBounded(25);
  double null_rate = 0.05 + 0.25 * rng.NextDouble();
  std::vector<Table> tables;
  tables.emplace_back("F0", Schema::FromNames({"k", "a", "b"}));
  tables.emplace_back("F1", Schema::FromNames({"k", "b", "c"}));
  tables.emplace_back("F2", Schema::FromNames({"k", "c", "d"}));
  for (size_t i = 0; i < entities; ++i) {
    auto val = [&](const char* a) -> Value {
      if (rng.NextBool(null_rate)) return Value::Null();
      return Value::String(std::string(a) + std::to_string(i));
    };
    if (rng.NextBool(0.8)) {
      (void)tables[0].AddRow({val("k"), val("a"), val("b")});
    }
    if (rng.NextBool(0.8)) {
      (void)tables[1].AddRow({val("k"), val("b"), val("c")});
    }
    if (rng.NextBool(0.8)) {
      (void)tables[2].AddRow({val("k"), val("c"), val("d")});
    }
  }
  return tables;
}

class FdPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdPropertySweep, OutputIsSubsumptionFreeAndLossless) {
  std::vector<Table> storage = RandomFragments(GetParam());
  std::vector<const Table*> tables;
  for (const Table& t : storage) tables.push_back(&t);
  NameMatcher matcher;
  auto alignment = matcher.Align(tables);
  ASSERT_TRUE(alignment.ok());
  auto fd = FullDisjunction().Integrate(tables, *alignment);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  // (1) No output tuple subsumes another.
  for (size_t i = 0; i < fd->num_rows(); ++i) {
    for (size_t j = 0; j < fd->num_rows(); ++j) {
      if (i != j) {
        ASSERT_FALSE(TupleSubsumedBy(fd->row(i), fd->row(j)))
            << "seed " << GetParam() << ": " << i << " subsumed by " << j;
      }
    }
  }
  // (2) Every input tuple is covered by some output tuple.
  auto u = BuildOuterUnion(tables, *alignment, "u");
  ASSERT_TRUE(u.ok());
  for (size_t i = 0; i < u->num_rows(); ++i) {
    bool covered = false;
    for (size_t j = 0; j < fd->num_rows() && !covered; ++j) {
      covered = TupleSubsumedBy(u->row(i), fd->row(j));
    }
    ASSERT_TRUE(covered) << "seed " << GetParam() << ": input " << i;
  }
}

TEST_P(FdPropertySweep, OrderIndependenceAsRelation) {
  std::vector<Table> storage = RandomFragments(GetParam());
  std::vector<const Table*> fwd = {&storage[0], &storage[1], &storage[2]};
  std::vector<const Table*> rev = {&storage[2], &storage[0], &storage[1]};
  NameMatcher matcher;
  auto a1 = matcher.Align(fwd);
  auto a2 = matcher.Align(rev);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  auto r1 = FullDisjunction().Integrate(fwd, *a1);
  auto r2 = FullDisjunction().Integrate(rev, *a2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Project r2 into r1's column order by display name.
  std::vector<size_t> proj;
  for (size_t c = 0; c < r1->num_columns(); ++c) {
    size_t idx = r2->schema().IndexOf(r1->schema().column(c).name);
    ASSERT_NE(idx, Schema::npos);
    proj.push_back(idx);
  }
  Table r2p = r2->ProjectColumns(proj, "r2p");
  EXPECT_TRUE(r1->SameRowsAs(r2p)) << "seed " << GetParam();
}

TEST_P(FdPropertySweep, ParallelNaiveIndexedAgree) {
  std::vector<Table> storage = RandomFragments(GetParam());
  std::vector<const Table*> tables;
  for (const Table& t : storage) tables.push_back(&t);
  NameMatcher matcher;
  auto alignment = matcher.Align(tables);
  ASSERT_TRUE(alignment.ok());
  auto indexed = FullDisjunction().Integrate(tables, *alignment);
  auto naive = NaiveFullDisjunction().Integrate(tables, *alignment);
  auto parallel = ParallelFullDisjunction(3).Integrate(tables, *alignment);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(indexed->SameRowsAs(*naive)) << "seed " << GetParam();
  EXPECT_TRUE(indexed->SameRowsAs(*parallel)) << "seed " << GetParam();
}

TEST_P(FdPropertySweep, FdCoversOuterJoinInformation) {
  std::vector<Table> storage = RandomFragments(GetParam());
  std::vector<const Table*> tables;
  for (const Table& t : storage) tables.push_back(&t);
  NameMatcher matcher;
  auto alignment = matcher.Align(tables);
  ASSERT_TRUE(alignment.ok());
  auto fd = FullDisjunction().Integrate(tables, *alignment);
  auto oj = OuterJoinIntegration().Integrate(tables, *alignment);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(oj.ok());
  for (size_t i = 0; i < oj->num_rows(); ++i) {
    bool covered = false;
    for (size_t j = 0; j < fd->num_rows() && !covered; ++j) {
      covered = TupleSubsumedBy(oj->row(i), fd->row(j));
    }
    ASSERT_TRUE(covered) << "seed " << GetParam() << " oj row " << i;
  }
}

TEST_P(FdPropertySweep, IncrementalExtensionEqualsFullRecompute) {
  // Associativity in its operational form: FD(FD(T1,T2), T3) equals
  // FD(T1,T2,T3) — the incremental-integration pattern (add one more
  // discovered table to an existing integrated result).
  std::vector<Table> storage = RandomFragments(GetParam());
  NameMatcher matcher;
  FullDisjunction fd;

  std::vector<const Table*> all = {&storage[0], &storage[1], &storage[2]};
  auto align_all = matcher.Align(all);
  ASSERT_TRUE(align_all.ok());
  auto full = fd.Integrate(all, *align_all);
  ASSERT_TRUE(full.ok());

  std::vector<const Table*> first_two = {&storage[0], &storage[1]};
  auto align_two = matcher.Align(first_two);
  ASSERT_TRUE(align_two.ok());
  auto partial = fd.Integrate(first_two, *align_two);
  ASSERT_TRUE(partial.ok());
  Table partial_t = std::move(partial).value();
  partial_t.set_name("partial_fd");

  std::vector<const Table*> extended = {&partial_t, &storage[2]};
  auto align_ext = matcher.Align(extended);
  ASSERT_TRUE(align_ext.ok());
  auto incremental = fd.Integrate(extended, *align_ext);
  ASSERT_TRUE(incremental.ok());

  // Compare as relations (column order may differ).
  std::vector<size_t> proj;
  for (size_t c = 0; c < full->num_columns(); ++c) {
    size_t idx =
        incremental->schema().IndexOf(full->schema().column(c).name);
    ASSERT_NE(idx, Schema::npos);
    proj.push_back(idx);
  }
  Table inc_reordered = incremental->ProjectColumns(proj, "inc");
  EXPECT_TRUE(full->SameRowsAs(inc_reordered)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdPropertySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ------------------------------------------------------ MinHash accuracy

struct MinHashCase {
  size_t num_perm;
  double true_jaccard;
  double tolerance;
};

class MinHashAccuracySweep : public ::testing::TestWithParam<MinHashCase> {};

TEST_P(MinHashAccuracySweep, EstimateWithinTolerance) {
  const MinHashCase& c = GetParam();
  // Construct two sets with the exact target Jaccard: |A|=|B|=n,
  // overlap o: J = o / (2n - o)  =>  o = 2nJ/(1+J).
  const size_t n = 600;
  size_t overlap =
      static_cast<size_t>(2.0 * n * c.true_jaccard / (1.0 + c.true_jaccard) +
                          0.5);
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back("s" + std::to_string(i));
    b.push_back(i < overlap ? "s" + std::to_string(i)
                            : "t" + std::to_string(i));
  }
  double truth = Jaccard(a, b);
  MinHash ma = MinHash::FromTokens(a, c.num_perm);
  MinHash mb = MinHash::FromTokens(b, c.num_perm);
  EXPECT_NEAR(ma.EstimateJaccard(mb), truth, c.tolerance)
      << "perm=" << c.num_perm << " J=" << c.true_jaccard;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MinHashAccuracySweep,
    ::testing::Values(MinHashCase{64, 0.2, 0.18}, MinHashCase{64, 0.5, 0.18},
                      MinHashCase{64, 0.8, 0.18},
                      MinHashCase{128, 0.2, 0.13},
                      MinHashCase{128, 0.5, 0.13},
                      MinHashCase{128, 0.8, 0.13},
                      MinHashCase{256, 0.2, 0.09},
                      MinHashCase{256, 0.5, 0.09},
                      MinHashCase{256, 0.8, 0.09},
                      MinHashCase{512, 0.5, 0.07}));

// ---------------------------------------------------- LSH Ensemble recall

class LshEnsembleRecallSweep : public ::testing::TestWithParam<double> {};

TEST_P(LshEnsembleRecallSweep, HighContainmentSetsAreFound) {
  const double threshold = GetParam();
  Rng rng(404);
  LshEnsemble ens;
  // 60 decoys with random overlap; 10 planted sets containing the query.
  std::vector<std::string> query;
  for (int i = 0; i < 80; ++i) query.push_back("q" + std::to_string(i));
  std::vector<uint64_t> planted;
  for (uint64_t id = 0; id < 10; ++id) {
    std::vector<std::string> s = query;  // full containment
    size_t extra = 20 + rng.NextBounded(300);
    for (size_t e = 0; e < extra; ++e) {
      s.push_back("x" + std::to_string(id) + "_" + std::to_string(e));
    }
    ASSERT_TRUE(ens.Add(1000 + id, s).ok());
    planted.push_back(1000 + id);
  }
  for (uint64_t id = 0; id < 60; ++id) {
    std::vector<std::string> s;
    size_t size = 30 + rng.NextBounded(400);
    for (size_t e = 0; e < size; ++e) {
      s.push_back("d" + std::to_string(id) + "_" + std::to_string(e));
    }
    ASSERT_TRUE(ens.Add(id, s).ok());
  }
  ASSERT_TRUE(ens.Build().ok());
  std::vector<uint64_t> hits = ens.Query(query, threshold);
  size_t found = 0;
  for (uint64_t id : planted) {
    if (std::find(hits.begin(), hits.end(), id) != hits.end()) ++found;
  }
  // Fully-containing sets must be recalled near-perfectly at any threshold.
  EXPECT_GE(found, 9u) << "threshold " << threshold;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, LshEnsembleRecallSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

// --------------------------------------------------------- CSV round-trip

class CsvRoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripSweep, RandomTablesSurvive) {
  Rng rng(GetParam());
  size_t cols = 1 + rng.NextBounded(6);
  size_t rows = rng.NextBounded(40);
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) {
    names.push_back("col_" + std::to_string(c));
  }
  Table t("rt", Schema::FromNames(names));
  const std::string specials[] = {
      "plain",   "with,comma", "with\"quote", "multi\nline", "  spaced  ",
      "uni±code", "",          "123",         "4.5",         "-7"};
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    for (size_t c = 0; c < cols; ++c) {
      // A single-column all-null row serializes to a blank line, which the
      // reader (like pandas) skips by design — don't generate it.
      switch (cols == 1 ? 1 + rng.NextBounded(4) : rng.NextBounded(5)) {
        case 0:
          row.push_back(Value::Null());
          break;
        case 1:
          row.push_back(Value::Int(rng.NextInt(-1000000, 1000000)));
          break;
        case 2:
          row.push_back(
              Value::Double(static_cast<double>(rng.NextInt(-999, 999)) / 8.0));
          break;
        default: {
          std::string s = specials[rng.NextBounded(10)];
          // Same blank-line caveat for the empty string in 1-col tables.
          if (cols == 1 && s.empty()) s = "x";
          row.push_back(Value::String(std::move(s)));
        }
      }
    }
    ASSERT_TRUE(t.AddRow(std::move(row)).ok());
  }
  std::string csv = CsvWriter::ToString(t);
  auto back = CsvReader::Parse(csv, "rt");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->num_columns(), t.num_columns());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const Value& orig = t.at(r, c);
      const Value& got = back->at(r, c);
      if (orig.is_null()) {
        EXPECT_TRUE(got.is_null()) << r << "," << c;
      } else if (orig.is_string() &&
                 (TrimView(orig.as_string()) != orig.as_string() ||
                  orig.as_string().empty())) {
        // Leading/trailing whitespace is normalized by design; empty
        // strings become nulls.
        continue;
      } else {
        double od;
        double gd;
        if (orig.AsNumeric(&od) && got.AsNumeric(&gd)) {
          EXPECT_NEAR(od, gd, 1e-9) << r << "," << c;
        } else {
          EXPECT_TRUE(got.Identical(orig))
              << r << "," << c << ": '" << orig.ToCsvString() << "' vs '"
              << got.ToCsvString() << "'";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripSweep,
                         ::testing::Range<uint64_t>(100, 110));

// ------------------------------------------------- Alignment constraints

class AlignmentConstraintSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlignmentConstraintSweep, HolisticAlignmentIsAlwaysValidPartition) {
  LakeGeneratorParams p;
  p.fragments_per_domain = 4;
  p.header_noise = 0.7;
  p.null_rate = 0.15;
  p.seed = GetParam();
  p.domains = {"companies", "flights"};
  auto out = SyntheticLakeGenerator(p).Generate();
  std::vector<const Table*> tables = out.lake.tables();
  AliteMatcher matcher;
  auto r = matcher.Align(tables);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Validate() enforces: every column in exactly one cluster, no
  // same-table pairs.
  EXPECT_TRUE(r->Validate(tables).ok());
  // And the integrated table is computable over it.
  auto fd = FullDisjunction().Integrate(tables, *r);
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentConstraintSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

// --------------------------------------------------------- ER idempotency

class ErIdempotencySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ErIdempotencySweep, ResolvingTwiceChangesNothing) {
  // ER is a fix-point style cleanup: applying it to its own output must be
  // a no-op (clusters were already merged).
  std::vector<Table> storage = RandomFragments(GetParam());
  std::vector<const Table*> tables;
  for (const Table& t : storage) tables.push_back(&t);
  NameMatcher matcher;
  auto alignment = matcher.Align(tables);
  ASSERT_TRUE(alignment.ok());
  auto fd = FullDisjunction().Integrate(tables, *alignment);
  ASSERT_TRUE(fd.ok());
  EntityResolver er;
  auto once = er.Resolve(*fd);
  ASSERT_TRUE(once.ok());
  auto twice = er.Resolve(once->resolved);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once->resolved.num_rows(), twice->resolved.num_rows())
      << "seed " << GetParam();
  EXPECT_TRUE(once->resolved.SameRowsAs(twice->resolved))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErIdempotencySweep,
                         ::testing::Values(3, 14, 15, 92, 65));

// ----------------------------------------------------- string sim bounds

class SimilarityBoundsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityBoundsSweep, AllMeasuresStayInUnitRange) {
  Rng rng(GetParam());
  auto rand_str = [&rng]() {
    size_t len = rng.NextBounded(12);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.NextBounded(6));
    }
    return s;
  };
  for (int i = 0; i < 200; ++i) {
    std::string a = rand_str();
    std::string b = rand_str();
    for (double v : {JaroWinkler(a, b), Jaro(a, b),
                     LevenshteinSimilarity(a, b), QGramJaccard(a, b)}) {
      ASSERT_GE(v, 0.0) << a << " / " << b;
      ASSERT_LE(v, 1.0) << a << " / " << b;
    }
    // Symmetry.
    ASSERT_DOUBLE_EQ(Jaro(a, b), Jaro(b, a));
    ASSERT_DOUBLE_EQ(LevenshteinSimilarity(a, b), LevenshteinSimilarity(b, a));
    // Identity.
    ASSERT_DOUBLE_EQ(JaroWinkler(a, a), a.empty() ? 1.0 : 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityBoundsSweep,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace dialite
