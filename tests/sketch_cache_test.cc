/// Tests for TableSketchCache: memoization, hit/miss accounting, MinHash
/// parameter keying, invalidation, thread safety, and the end-to-end
/// guarantee that a full Dialite::BuildIndexes pass tokenizes each lake
/// table exactly once across all registered algorithms.

// The cache is cross-checked against the deprecated copy-returning column
// accessors on purpose — they are the reference the cache must agree with
// for one more release.
#define DIALITE_SUPPRESS_DEPRECATIONS

#include "lake/table_sketch_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/dialite.h"
#include "lake/data_lake.h"
#include "lake/lake_generator.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

TEST(SketchCacheTest, TokenSetsMemoizedPerTable) {
  Table t = paper::MakeT1();
  TableSketchCache cache;
  std::shared_ptr<const ColumnTokenSets> a = cache.TokenSets(t);
  std::shared_ptr<const ColumnTokenSets> b = cache.TokenSets(t);
  EXPECT_EQ(a.get(), b.get());
  ASSERT_EQ(a->size(), t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ((*a)[c], t.ColumnTokenSet(c)) << "column " << c;
  }
  TableSketchCache::Stats s = cache.stats();
  EXPECT_EQ(s.token_set_misses, 1u);
  EXPECT_EQ(s.token_set_hits, 1u);
}

TEST(SketchCacheTest, DistinctValuesMatchTable) {
  Table t = paper::MakeT1();
  TableSketchCache cache;
  std::shared_ptr<const ColumnDistinctValues> d = cache.DistinctValues(t);
  ASSERT_EQ(d->size(), t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    std::vector<std::string> expected;
    for (const Value& v : t.DistinctColumnValues(c)) {
      expected.push_back(v.ToCsvString());
    }
    EXPECT_EQ((*d)[c], expected) << "column " << c;
  }
  EXPECT_EQ(cache.DistinctValues(t).get(), d.get());
  TableSketchCache::Stats s = cache.stats();
  EXPECT_EQ(s.distinct_value_misses, 1u);
  EXPECT_EQ(s.distinct_value_hits, 1u);
}

TEST(SketchCacheTest, DistinctCountIsTokenSetCardinality) {
  Table t = paper::MakeT1();
  TableSketchCache cache;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(cache.DistinctCount(t, c), t.ColumnTokenSet(c).size());
  }
}

TEST(SketchCacheTest, MinHashKeyedByParams) {
  Table t = paper::MakeT1();
  TableSketchCache cache;
  auto s1 = cache.MinHashSignatures(t, 64, 1);
  auto s1_again = cache.MinHashSignatures(t, 64, 1);
  auto s2 = cache.MinHashSignatures(t, 64, 2);   // different seed
  auto s3 = cache.MinHashSignatures(t, 128, 1);  // different width
  EXPECT_EQ(s1.get(), s1_again.get());
  EXPECT_NE(s1.get(), s2.get());
  EXPECT_NE(s1.get(), s3.get());
  ASSERT_EQ(s1->size(), t.num_columns());
  EXPECT_EQ((*s1)[0].num_perm(), 64u);
  EXPECT_EQ((*s3)[0].num_perm(), 128u);
  // Signatures match a direct build over the same token sets.
  for (size_t c = 0; c < t.num_columns(); ++c) {
    MinHash direct = MinHash::FromTokens(t.ColumnTokenSet(c), 64, 1);
    EXPECT_EQ((*s1)[c].signature(), direct.signature()) << "column " << c;
  }
  TableSketchCache::Stats s = cache.stats();
  EXPECT_EQ(s.minhash_misses, 3u);
  EXPECT_EQ(s.minhash_hits, 1u);
}

TEST(SketchCacheTest, InvalidateForcesRecompute) {
  Table t = paper::MakeT1();
  TableSketchCache cache;
  cache.TokenSets(t);
  cache.Invalidate(t.name());
  cache.TokenSets(t);
  EXPECT_EQ(cache.stats().token_set_misses, 2u);
  cache.Clear();
  cache.TokenSets(t);
  EXPECT_EQ(cache.stats().token_set_misses, 3u);
  cache.ResetStats();
  TableSketchCache::Stats s = cache.stats();
  EXPECT_EQ(s.token_set_misses, 0u);
  EXPECT_EQ(s.token_set_hits, 0u);
}

TEST(SketchCacheTest, AddTableInvalidatesLakeCache) {
  DataLake lake;
  Table t = paper::MakeT1();
  lake.sketch_cache().TokenSets(t);
  EXPECT_EQ(lake.sketch_cache().stats().token_set_misses, 1u);
  // Adding a table with that name must drop the (now possibly stale) entry.
  ASSERT_TRUE(lake.AddTable(paper::MakeT1()).ok());
  lake.sketch_cache().TokenSets(*lake.tables().front());
  EXPECT_EQ(lake.sketch_cache().stats().token_set_misses, 2u);
}

TEST(SketchCacheTest, ConcurrentRequestsComputeOnce) {
  Table t = paper::MakeT1();
  TableSketchCache cache;
  constexpr size_t kRequests = 64;
  std::vector<std::shared_ptr<const ColumnTokenSets>> got(kRequests);
  ThreadPool pool(8);
  pool.ParallelFor(kRequests, [&](size_t i) { got[i] = cache.TokenSets(t); });
  for (size_t i = 1; i < kRequests; ++i) EXPECT_EQ(got[i].get(), got[0].get());
  TableSketchCache::Stats s = cache.stats();
  EXPECT_EQ(s.token_set_misses, 1u);
  EXPECT_EQ(s.token_set_hits, kRequests - 1);
}

TEST(SketchCacheTest, BuildIndexesTokenizesEachTableExactlyOnce) {
  // The headline guarantee: seven registered algorithms, one full offline
  // pass, and every lake table is tokenized exactly once — all further
  // requests are cache hits, even with algorithms building concurrently.
  LakeGeneratorParams params;
  params.fragments_per_domain = 2;
  params.seed = 7;
  SyntheticLakeGenerator gen(params);
  DataLake lake = std::move(gen.Generate().lake);
  const size_t n = lake.size();
  ASSERT_GT(n, 0u);

  Dialite dialite(&lake);
  ASSERT_TRUE(dialite.RegisterDefaults().ok());
  lake.sketch_cache().ResetStats();
  ASSERT_TRUE(dialite.BuildIndexes().ok());

  TableSketchCache::Stats s = lake.sketch_cache().stats();
  EXPECT_EQ(s.token_set_misses, n);
  // At least five of the seven algorithms consume token sets per table.
  EXPECT_GE(s.token_set_hits, 5 * n);
  // SANTOS and TUS consume distinct raw values; LSH Ensemble consumes one
  // MinHash configuration per table.
  EXPECT_EQ(s.distinct_value_misses, n);
  EXPECT_GE(s.distinct_value_hits, n);
  EXPECT_EQ(s.minhash_misses, n);

  // A rebuild is all hits: nothing is recomputed.
  ASSERT_TRUE(dialite.BuildIndexes().ok());
  TableSketchCache::Stats s2 = lake.sketch_cache().stats();
  EXPECT_EQ(s2.token_set_misses, n);
  EXPECT_EQ(s2.distinct_value_misses, n);
  EXPECT_EQ(s2.minhash_misses, n);
}

}  // namespace
}  // namespace dialite
