#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <string>

#include "align/alite_matcher.h"
#include "analyze/aggregate.h"
#include "analyze/entity_resolution.h"
#include "analyze/stats.h"
#include "integrate/full_disjunction.h"
#include "integrate/join_ops.h"
#include "lake/paper_fixtures.h"

namespace dialite {
namespace {

// -------------------------------------------------------------- parsing

TEST(ParseNumericLooseTest, PaperNotations) {
  double d = 0.0;
  EXPECT_TRUE(ParseNumericLoose(Value::String("63%"), &d));
  EXPECT_DOUBLE_EQ(d, 63.0);
  EXPECT_TRUE(ParseNumericLoose(Value::String("1.4M"), &d));
  EXPECT_DOUBLE_EQ(d, 1.4e6);
  EXPECT_TRUE(ParseNumericLoose(Value::String("263k"), &d));
  EXPECT_DOUBLE_EQ(d, 263000.0);
  EXPECT_TRUE(ParseNumericLoose(Value::String("2B"), &d));
  EXPECT_DOUBLE_EQ(d, 2e9);
  EXPECT_TRUE(ParseNumericLoose(Value::String("2,500"), &d));
  EXPECT_DOUBLE_EQ(d, 2500.0);
  EXPECT_TRUE(ParseNumericLoose(Value::Int(42), &d));
  EXPECT_DOUBLE_EQ(d, 42.0);
  EXPECT_FALSE(ParseNumericLoose(Value::String("Berlin"), &d));
  EXPECT_FALSE(ParseNumericLoose(Value::Null(), &d));
  EXPECT_FALSE(ParseNumericLoose(Value::String("%"), &d));
}

// Regression: the loose parser went through errno+strtod, which honors
// the process locale — under de_DE "1.4M" parsed as 1e6 (strtod stopped
// at the '.') and every decimal statistic silently shifted. Stats must be
// identical in every locale.
TEST(ParseNumericLooseTest, LocaleIndependentDecimalSeparator) {
  std::string previous = std::setlocale(LC_ALL, nullptr);
  bool installed = false;
  for (const char* name :
       {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      installed = true;
      break;
    }
  }
  if (!installed) {
    GTEST_SKIP() << "no comma-decimal locale installed in this container";
  }
  double d = 0.0;
  EXPECT_TRUE(ParseNumericLoose(Value::String("3.14"), &d));
  EXPECT_DOUBLE_EQ(d, 3.14);
  EXPECT_TRUE(ParseNumericLoose(Value::String("1.4M"), &d));
  EXPECT_DOUBLE_EQ(d, 1.4e6);
  EXPECT_TRUE(ParseNumericLoose(Value::String("63.5%"), &d));
  EXPECT_DOUBLE_EQ(d, 63.5);
  // Thousands-separator commas still strip; they never become decimals.
  EXPECT_TRUE(ParseNumericLoose(Value::String("2,500.25"), &d));
  EXPECT_DOUBLE_EQ(d, 2500.25);
  std::setlocale(LC_ALL, previous.c_str());
}

// ---------------------------------------------------------------- stats

Table NumTable() {
  Table t("t", Schema::FromNames({"x", "y", "label"}));
  // y = 2x exactly; label non-numeric.
  for (int i = 1; i <= 5; ++i) {
    (void)t.AddRow({Value::Int(i), Value::Int(2 * i),
                    Value::String("r" + std::to_string(i))});
  }
  return t;
}

TEST(StatsTest, SummarizeColumn) {
  Table t = NumTable();
  auto s = SummarizeColumn(t, "x");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->count, 5u);
  EXPECT_DOUBLE_EQ(s->min, 1.0);
  EXPECT_DOUBLE_EQ(s->max, 5.0);
  EXPECT_DOUBLE_EQ(s->mean, 3.0);
  EXPECT_NEAR(s->stddev, std::sqrt(2.0), 1e-9);
  EXPECT_FALSE(SummarizeColumn(t, "label").ok());
  EXPECT_EQ(SummarizeColumn(t, "zzz").status().code(), StatusCode::kNotFound);
}

TEST(StatsTest, PearsonPerfectAndInverse) {
  Table t = NumTable();
  auto r = PearsonCorrelation(t, "x", "y");
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-9);

  Table inv("i", Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 6; ++i) {
    (void)inv.AddRow({Value::Int(i), Value::Int(10 - i)});
  }
  auto r2 = PearsonCorrelation(inv, "a", "b");
  ASSERT_TRUE(r2.ok());
  EXPECT_NEAR(*r2, -1.0, 1e-9);
}

TEST(StatsTest, PearsonSkipsNullsAndText) {
  Table t("t", Schema::FromNames({"a", "b"}));
  (void)t.AddRow({Value::Int(1), Value::Int(2)});
  (void)t.AddRow({Value::Null(), Value::Int(5)});
  (void)t.AddRow({Value::Int(2), Value::String("n/a... not numeric")});
  (void)t.AddRow({Value::Int(3), Value::Int(6)});
  (void)t.AddRow({Value::Int(4), Value::Int(8)});
  auto r = PearsonCorrelation(t, "a", "b");
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-9);
}

TEST(StatsTest, PearsonErrorsOnDegenerate) {
  Table t("t", Schema::FromNames({"a", "b"}));
  (void)t.AddRow({Value::Int(1), Value::Int(1)});
  EXPECT_FALSE(PearsonCorrelation(t, "a", "b").ok());  // < 2 pairs
  (void)t.AddRow({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(PearsonCorrelation(t, "a", "b").ok());  // zero variance in a
}

TEST(StatsTest, SpearmanMonotoneNonlinear) {
  Table t("t", Schema::FromNames({"a", "b"}));
  // b = a^3: nonlinear but perfectly monotone.
  for (int i = 1; i <= 8; ++i) {
    (void)t.AddRow({Value::Int(i), Value::Int(i * i * i)});
  }
  auto rho = SpearmanCorrelation(t, "a", "b");
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 1.0, 1e-9);
}

TEST(StatsTest, ArgExtreme) {
  Table t = NumTable();
  auto hi = ArgExtreme(t, "y", /*largest=*/true);
  ASSERT_TRUE(hi.ok());
  EXPECT_EQ(*hi, 4u);
  auto lo = ArgExtreme(t, "y", /*largest=*/false);
  ASSERT_TRUE(lo.ok());
  EXPECT_EQ(*lo, 0u);
}

TEST(StatsTest, WorksOnPaperFig3Values) {
  // The integrated table's "63%" / "1.4M" cells must be analyzable as-is.
  Table fd = paper::MakeFig3Expected();
  auto s = SummarizeColumn(fd, "Vaccination Rate (1+ dose)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->count, 5u);  // 5 of 7 rows have a rate
  EXPECT_DOUBLE_EQ(s->min, 62.0);
  EXPECT_DOUBLE_EQ(s->max, 83.0);
  // Lowest vaccination rate: Boston (Example 3's first finding).
  auto lo = ArgExtreme(fd, "Vaccination Rate (1+ dose)", false);
  ASSERT_TRUE(lo.ok());
  EXPECT_EQ(fd.at(*lo, 1).as_string(), "Boston");
  auto hi = ArgExtreme(fd, "Vaccination Rate (1+ dose)", true);
  ASSERT_TRUE(hi.ok());
  EXPECT_EQ(fd.at(*hi, 1).as_string(), "Toronto");
}

// ------------------------------------------------------------ aggregate

TEST(AggregateTest, GroupByWithAllFunctions) {
  Table t("t", Schema::FromNames({"g", "v"}));
  (void)t.AddRow({Value::String("a"), Value::Int(1)});
  (void)t.AddRow({Value::String("a"), Value::Int(3)});
  (void)t.AddRow({Value::String("b"), Value::Int(10)});
  auto r = Aggregate(t, {"g"},
                     {{AggFn::kCount, "v", ""},
                      {AggFn::kSum, "v", ""},
                      {AggFn::kAvg, "v", ""},
                      {AggFn::kMin, "v", ""},
                      {AggFn::kMax, "v", ""}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 2u);  // sorted: a, b
  EXPECT_EQ(r->at(0, 0).as_string(), "a");
  EXPECT_EQ(r->at(0, 1).as_int(), 2);
  EXPECT_DOUBLE_EQ(r->at(0, 2).as_double(), 4.0);
  EXPECT_DOUBLE_EQ(r->at(0, 3).as_double(), 2.0);
  EXPECT_DOUBLE_EQ(r->at(0, 4).as_double(), 1.0);
  EXPECT_DOUBLE_EQ(r->at(0, 5).as_double(), 3.0);
  EXPECT_EQ(r->at(1, 0).as_string(), "b");
  EXPECT_DOUBLE_EQ(r->at(1, 2).as_double(), 10.0);
}

TEST(AggregateTest, WholeTableWhenNoGroupBy) {
  Table t = NumTable();
  auto r = Aggregate(t, {}, {{AggFn::kSum, "x", "total_x"}});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(r->at(0, 0).as_double(), 15.0);
  EXPECT_EQ(r->schema().column(0).name, "total_x");
}

TEST(AggregateTest, CountStarCountsRowsNullsIncluded) {
  Table t("t", Schema::FromNames({"g", "v"}));
  (void)t.AddRow({Value::String("a"), Value::Null()});
  (void)t.AddRow({Value::String("a"), Value::Int(1)});
  auto r = Aggregate(t, {"g"},
                     {{AggFn::kCount, "", "rows"}, {AggFn::kCount, "v", "vs"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 1).as_int(), 2);  // count(*)
  EXPECT_EQ(r->at(0, 2).as_int(), 1);  // count(v) skips null
}

TEST(AggregateTest, NullGroupKeysFormOwnGroup) {
  Table t("t", Schema::FromNames({"g", "v"}));
  (void)t.AddRow({Value::Null(), Value::Int(1)});
  (void)t.AddRow({Value::Null(), Value::Int(2)});
  (void)t.AddRow({Value::String("a"), Value::Int(3)});
  auto r = Aggregate(t, {"g"}, {{AggFn::kSum, "v", ""}});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_TRUE(r->at(0, 0).is_null());  // nulls sort first
  EXPECT_DOUBLE_EQ(r->at(0, 1).as_double(), 3.0);
}

TEST(AggregateTest, ErrorsOnBadSpecs) {
  Table t = NumTable();
  EXPECT_EQ(Aggregate(t, {"zzz"}, {{AggFn::kSum, "x", ""}}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Aggregate(t, {}, {{AggFn::kSum, "zzz", ""}}).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(Aggregate(t, {}, {}).ok());
  EXPECT_FALSE(Aggregate(t, {}, {{AggFn::kSum, "", ""}}).ok());
}

TEST(AggregateTest, LooseParsingInAggregates) {
  Table fd = paper::MakeFig3Expected();
  auto r = Aggregate(fd, {}, {{AggFn::kMax, "Total Cases", "max_cases"}});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->at(0, 0).as_double(), 2.68e6);  // "2.68M"
}

// -------------------------------------------------------------------- ER

class ErVaccineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t4_ = paper::MakeT4();
    t5_ = paper::MakeT5();
    t6_ = paper::MakeT6();
    tables_ = {&t4_, &t5_, &t6_};
    AliteMatcher matcher;
    auto a = matcher.Align(tables_);
    ASSERT_TRUE(a.ok());
    alignment_ = std::move(a).value();
  }
  Table t4_, t5_, t6_;
  std::vector<const Table*> tables_;
  Alignment alignment_;
};

TEST_F(ErVaccineTest, ResolvesFdResultToFigure8d) {
  auto fd = FullDisjunction().Integrate(tables_, alignment_);
  ASSERT_TRUE(fd.ok());
  EntityResolver er;
  auto r = er.Resolve(*fd);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Fig. 8(d): two resolved entities — Pfizer/FDA/US and J&J/FDA/US.
  EXPECT_EQ(r->resolved.num_rows(), 2u) << r->resolved.ToPrettyString();
  bool jnj_fda_us = false;
  for (size_t row = 0; row < r->resolved.num_rows(); ++row) {
    bool jnj = false;
    bool fda = false;
    for (size_t c = 0; c < r->resolved.num_columns(); ++c) {
      if (r->resolved.at(row, c).is_null()) continue;
      std::string s = r->resolved.at(row, c).ToCsvString();
      if (s == "J&J" || s == "JnJ") jnj = true;
      if (s == "FDA") fda = true;
    }
    if (jnj && fda) jnj_fda_us = true;
  }
  EXPECT_TRUE(jnj_fda_us)
      << "ER over FD must connect J&J with its approver FDA";
}

TEST_F(ErVaccineTest, CannotResolveOuterJoinDebris) {
  auto oj = OuterJoinIntegration().Integrate(tables_, alignment_);
  ASSERT_TRUE(oj.ok());
  EntityResolver er;
  auto r = er.Resolve(*oj);
  ASSERT_TRUE(r.ok());
  // f9 (JnJ,±,⊥) and f10 (⊥,±,USA) stay unresolved: outer join output has
  // MORE rows after ER than FD's.
  auto fd = FullDisjunction().Integrate(tables_, alignment_);
  ASSERT_TRUE(fd.ok());
  auto r_fd = er.Resolve(*fd);
  ASSERT_TRUE(r_fd.ok());
  EXPECT_GT(r->resolved.num_rows(), r_fd->resolved.num_rows());
  // No resolved outer-join row connects J&J to FDA.
  bool jnj_fda = false;
  for (size_t row = 0; row < r->resolved.num_rows(); ++row) {
    bool jnj = false;
    bool fda = false;
    for (size_t c = 0; c < r->resolved.num_columns(); ++c) {
      if (r->resolved.at(row, c).is_null()) continue;
      std::string s = r->resolved.at(row, c).ToCsvString();
      if (s == "J&J" || s == "JnJ") jnj = true;
      if (s == "FDA") fda = true;
    }
    jnj_fda |= (jnj && fda);
  }
  EXPECT_FALSE(jnj_fda);
}

TEST(EntityResolverTest, CellSimilarityKinds) {
  EntityResolver er;
  EXPECT_DOUBLE_EQ(
      er.CellSimilarity(Value::String("USA"), Value::String("United States")),
      1.0);  // KB sameAs
  EXPECT_DOUBLE_EQ(
      er.CellSimilarity(Value::String("x"), Value::String("x")), 1.0);
  EXPECT_DOUBLE_EQ(er.CellSimilarity(Value::Null(), Value::String("x")), 0.0);
  EXPECT_NEAR(er.CellSimilarity(Value::Int(100), Value::Int(90)), 0.9, 1e-9);
  double typo = er.CellSimilarity(Value::String("Barcelona"),
                                  Value::String("Barcelone"));
  EXPECT_GT(typo, 0.9);
}

TEST(EntityResolverTest, ConflictVetoBlocksDifferentEntities) {
  // Same country+approver but clearly different vaccine names: no match.
  Table t("t", Schema::FromNames({"Vaccine", "Approver", "Country"}));
  (void)t.AddRow({Value::String("Pfizer"), Value::String("FDA"),
                  Value::String("United States")});
  (void)t.AddRow({Value::String("Moderna"), Value::String("FDA"),
                  Value::String("United States")});
  EntityResolver er;
  auto r = er.Resolve(t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->resolved.num_rows(), 2u);
  EXPECT_TRUE(r->matches.empty());
}

TEST(EntityResolverTest, MinSharedColumnsGate) {
  // Rows overlap in a single column only: incomparable.
  Table t("t", Schema::FromNames({"a", "b"}));
  (void)t.AddRow({Value::String("x"), Value::Null()});
  (void)t.AddRow({Value::String("x"), Value::Null()});
  EntityResolver er;
  auto r = er.Resolve(t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->resolved.num_rows(), 2u);
  EXPECT_GE(r->incomparable_pairs, 1u);

  EntityResolver::Params p;
  p.min_shared_columns = 1;
  EntityResolver permissive(p, &KnowledgeBase::BuiltIn());
  auto r2 = permissive.Resolve(t);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->resolved.num_rows(), 1u);
}

TEST(EntityResolverTest, TransitiveClustersMerge) {
  Table t("t", Schema::FromNames({"name", "city"}));
  (void)t.AddRow({Value::String("John Smith"), Value::String("Boston")});
  (void)t.AddRow({Value::String("John Smith"), Value::String("Boston")});
  (void)t.AddRow({Value::String("Jon Smith"), Value::String("Boston")});
  EntityResolver::Params p;
  p.threshold = 0.85;
  EntityResolver er(p, &KnowledgeBase::BuiltIn());
  auto r = er.Resolve(t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->resolved.num_rows(), 1u) << r->resolved.ToPrettyString();
}

TEST(EntityResolverTest, EmptyAndSingleRowTables) {
  Table empty("e", Schema::FromNames({"a"}));
  EntityResolver er;
  auto r = er.Resolve(empty);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->resolved.num_rows(), 0u);
  Table one("o", Schema::FromNames({"a"}));
  (void)one.AddRow({Value::String("x")});
  auto r2 = er.Resolve(one);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->resolved.num_rows(), 1u);
}

}  // namespace
}  // namespace dialite
