// Layout-invariance tests for the columnar Table storage: the physical
// representation (typed lanes + interned strings + null map) must be
// unobservable through every public surface — CSV bytes, pretty printing,
// hashing, and the deprecated copy-returning column accessors.
#define DIALITE_SUPPRESS_DEPRECATIONS

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "lake/paper_fixtures.h"
#include "table/column_view.h"
#include "table/csv.h"
#include "table/dictionary.h"
#include "table/table.h"

namespace dialite {
namespace {

// ---------------------------------------------------------------------------
// CSV round-trip byte equality on the paper fixtures.

std::vector<Table> PaperTables() {
  std::vector<Table> out;
  out.push_back(paper::MakeT1());
  out.push_back(paper::MakeT2());
  out.push_back(paper::MakeT3());
  out.push_back(paper::MakeT4());
  out.push_back(paper::MakeT5());
  out.push_back(paper::MakeT6());
  out.push_back(paper::MakeFig3Expected());
  return out;
}

TEST(ColumnarCsvTest, PaperFixturesRoundTripByteEqual) {
  for (const Table& t : PaperTables()) {
    const std::string csv = CsvWriter::ToString(t);
    Result<Table> reparsed = CsvReader::Parse(csv, t.name());
    ASSERT_TRUE(reparsed.ok()) << t.name();
    EXPECT_EQ(CsvWriter::ToString(*reparsed), csv) << t.name();
  }
}

// ---------------------------------------------------------------------------
// Row-API construction vs column-major construction must be observably
// identical: SameRowsAs, pretty printing, and per-cell hashes all agree.

Value RandomValue(std::mt19937_64* rng) {
  switch ((*rng)() % 6) {
    case 0:
      return Value::Null(NullKind::kMissing);
    case 1:
      return Value::ProducedNull();
    case 2:
      return Value::Int(static_cast<int64_t>((*rng)() % 1000) - 500);
    case 3:
      return Value::Double(static_cast<double>((*rng)() % 1000) / 8.0);
    case 4:
      return Value::String("city_" + std::to_string((*rng)() % 20));
    default:
      // Strings that also parse as numbers, and the empty-ish edge.
      return Value::String(std::to_string((*rng)() % 50));
  }
}

TEST(ColumnarEquivalenceTest, RowApiVsFromColumnsProperty) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t ncols = 1 + rng() % 4;
    const size_t nrows = rng() % 30;
    std::vector<std::string> names;
    for (size_t c = 0; c < ncols; ++c) names.push_back("c" + std::to_string(c));
    Schema schema = Schema::FromNames(names);

    std::vector<std::vector<Value>> columns(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      for (size_t r = 0; r < nrows; ++r) columns[c].push_back(RandomValue(&rng));
    }

    Table by_rows("t", schema);
    for (size_t r = 0; r < nrows; ++r) {
      Row row;
      for (size_t c = 0; c < ncols; ++c) row.push_back(columns[c][r]);
      ASSERT_TRUE(by_rows.AddRow(std::move(row)).ok());
    }
    Result<Table> by_cols = Table::FromColumns("t", schema, columns);
    ASSERT_TRUE(by_cols.ok());

    EXPECT_TRUE(by_rows.SameRowsAs(*by_cols)) << "trial " << trial;
    EXPECT_TRUE(by_cols->SameRowsAs(by_rows)) << "trial " << trial;
    EXPECT_EQ(by_rows.ToPrettyString(), by_cols->ToPrettyString());
    EXPECT_EQ(CsvWriter::ToString(by_rows), CsvWriter::ToString(*by_cols));
    for (size_t c = 0; c < ncols; ++c) {
      const ColumnView a = by_rows.column(c);
      const ColumnView b = by_cols->column(c);
      for (size_t r = 0; r < nrows; ++r) {
        EXPECT_EQ(a.HashAt(r), b.HashAt(r));
        EXPECT_EQ(a.HashAt(r), by_rows.at(r, c).Hash());
      }
    }
  }
}

TEST(ColumnarEquivalenceTest, FromColumnsRejectsRaggedInput) {
  Schema schema = Schema::FromNames({"a", "b"});
  std::vector<std::vector<Value>> ragged = {{Value::Int(1), Value::Int(2)},
                                            {Value::Int(3)}};
  EXPECT_FALSE(Table::FromColumns("t", schema, ragged).ok());
  std::vector<std::vector<Value>> wrong_width = {{Value::Int(1)}};
  EXPECT_FALSE(Table::FromColumns("t", schema, wrong_width).ok());
}

// ---------------------------------------------------------------------------
// Dictionary interning.

TEST(StringDictionaryTest, InternDedupsAndKeepsFirstInternOrder) {
  StringDictionary dict;
  const uint32_t oslo = dict.Intern("Oslo");
  const uint32_t dallas = dict.Intern("Dallas");
  EXPECT_EQ(oslo, 0u);
  EXPECT_EQ(dallas, 1u);
  EXPECT_EQ(dict.Intern("Oslo"), oslo);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.view(oslo), "Oslo");
  EXPECT_EQ(dict.view(dallas), "Dallas");
  EXPECT_EQ(dict.Find("Oslo"), oslo);
  EXPECT_EQ(dict.Find("Bergen"), StringDictionary::kNpos);
}

TEST(StringDictionaryTest, CopyRebuildsIndexAgainstOwnStorage) {
  StringDictionary dict;
  dict.Intern("alpha");
  dict.Intern("beta");
  StringDictionary copy = dict;
  dict.Intern("gamma");  // must not disturb the copy
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.Find("alpha"), 0u);
  EXPECT_EQ(copy.Intern("beta"), 1u);
  EXPECT_EQ(copy.Intern("delta"), 2u);
  EXPECT_EQ(dict.Find("delta"), StringDictionary::kNpos);
}

TEST(ColumnarStorageTest, TableDictionarySharedAcrossColumns) {
  Table t("t", Schema::FromNames({"a", "b"}));
  ASSERT_TRUE(t.AddRow({Value::String("x"), Value::String("x")}).ok());
  ASSERT_TRUE(t.AddRow({Value::String("y"), Value::String("x")}).ok());
  EXPECT_EQ(t.dictionary().size(), 2u);
  EXPECT_EQ(t.column(0).string_id(0), t.column(1).string_id(0));
  EXPECT_EQ(t.column(0).string_at(1), "y");
}

// ---------------------------------------------------------------------------
// Null kinds survive the store.

TEST(ColumnarStorageTest, NullKindsPreserved) {
  Table t("t", Schema::FromNames({"a"}));
  ASSERT_TRUE(t.AddRow({Value::Null(NullKind::kMissing)}).ok());
  ASSERT_TRUE(t.AddRow({Value::ProducedNull()}).ok());
  ASSERT_TRUE(t.AddRow({Value::Int(3)}).ok());
  const ColumnView col = t.column(0);
  EXPECT_EQ(col.kind(0), CellKind::kMissingNull);
  EXPECT_EQ(col.kind(1), CellKind::kProducedNull);
  EXPECT_EQ(col.kind(2), CellKind::kInt);
  EXPECT_TRUE(t.at(0, 0).is_missing_null());
  EXPECT_TRUE(t.at(1, 0).is_produced_null());
  EXPECT_EQ(col.DisplayStringAt(0), Value::Null(NullKind::kMissing).ToDisplayString());
  EXPECT_EQ(col.DisplayStringAt(1), Value::ProducedNull().ToDisplayString());
}

TEST(ColumnarStorageTest, SetRewritesCellAcrossTypes) {
  Table t("t", Schema::FromNames({"a"}));
  ASSERT_TRUE(t.AddRow({Value::Int(1)}).ok());
  t.set(0, 0, Value::String("now a string"));
  EXPECT_EQ(t.at(0, 0), Value::String("now a string"));
  t.set(0, 0, Value::Double(2.5));
  EXPECT_EQ(t.at(0, 0), Value::Double(2.5));
  t.set(0, 0, Value::ProducedNull());
  EXPECT_TRUE(t.at(0, 0).is_produced_null());
}

// ---------------------------------------------------------------------------
// ColumnView per-cell operations match the Value reference implementation.

TEST(ColumnViewTest, PerCellOpsMatchValueMethods) {
  Table t("t", Schema::FromNames({"a"}));
  const std::vector<Value> cells = {
      Value::Int(42),          Value::Double(5.0),
      Value::Double(2.75),     Value::String("Quebec City"),
      Value::String("17"),     Value::Null(NullKind::kMissing),
      Value::ProducedNull(),   Value::Double(-0.0),
      Value::Int(-7),          Value::String(""),
  };
  for (const Value& v : cells) ASSERT_TRUE(t.AddRow({v}).ok());
  const ColumnView col = t.column(0);
  for (size_t r = 0; r < cells.size(); ++r) {
    const Value& v = cells[r];
    EXPECT_EQ(col.CsvStringAt(r), v.ToCsvString()) << r;
    EXPECT_EQ(col.DisplayStringAt(r), v.ToDisplayString()) << r;
    EXPECT_EQ(col.HashAt(r), v.Hash()) << r;
    EXPECT_EQ(col.HashAt(r, 99), v.Hash(99)) << r;
    double dv = 0.0;
    double dc = 0.0;
    EXPECT_EQ(col.AsNumericAt(r, &dc), v.AsNumeric(&dv)) << r;
    if (v.AsNumeric(&dv)) {
      EXPECT_EQ(dc, dv) << r;
    }
    EXPECT_EQ(col.value_at(r), v) << r;
  }
}

TEST(ColumnViewTest, CellsIdenticalCrossNumericAndNulls) {
  Table t("t", Schema::FromNames({"a", "b"}));
  ASSERT_TRUE(t.AddRow({Value::Int(5), Value::Double(5.0)}).ok());
  ASSERT_TRUE(
      t.AddRow({Value::Null(NullKind::kMissing), Value::ProducedNull()}).ok());
  ASSERT_TRUE(t.AddRow({Value::String("x"), Value::String("x")}).ok());
  ASSERT_TRUE(t.AddRow({Value::Int(5), Value::Int(6)}).ok());
  const ColumnView a = t.column(0);
  const ColumnView b = t.column(1);
  EXPECT_TRUE(CellsIdentical(a, 0, b, 0));   // 5 == 5.0
  EXPECT_TRUE(CellsIdentical(a, 1, b, 1));   // nulls of both kinds identical
  EXPECT_TRUE(CellsIdentical(a, 2, b, 2));   // same interned string
  EXPECT_FALSE(CellsIdentical(a, 3, b, 3));  // 5 != 6
  EXPECT_FALSE(CellsEqualValue(a, 1, b, 1));  // EqualsValue is non-null only
  EXPECT_TRUE(CellsEqualValue(a, 0, b, 0));
}

// ---------------------------------------------------------------------------
// Deprecated copy-returning accessors are exact wrappers over the view
// builders.

TEST(DeprecatedWrapperTest, WrappersMatchViewBuilders) {
  std::mt19937_64 rng(11);
  Table t("t", Schema::FromNames({"a"}));
  for (int r = 0; r < 200; ++r) ASSERT_TRUE(t.AddRow({RandomValue(&rng)}).ok());

  const ColumnView col = t.column(0);
  EXPECT_EQ(t.ColumnValues(0), ColumnMaterialize(col));
  EXPECT_EQ(t.DistinctColumnValues(0), ColumnDistinct(col));
  EXPECT_EQ(t.ColumnTokenSet(0), ColumnTokens(col));
}

// ---------------------------------------------------------------------------
// Projection re-interns into a minimal dictionary.

TEST(ColumnarStorageTest, ProjectColumnsReinternsDictionary) {
  Table t("t", Schema::FromNames({"keep", "drop"}));
  ASSERT_TRUE(t.AddRow({Value::String("kept"), Value::String("dropped")}).ok());
  ASSERT_TRUE(t.AddRow({Value::String("kept"), Value::String("junk")}).ok());
  EXPECT_EQ(t.dictionary().size(), 3u);
  Table p = t.ProjectColumns({0}, "p");
  EXPECT_EQ(p.dictionary().size(), 1u);
  EXPECT_EQ(p.at(0, 0), Value::String("kept"));
  EXPECT_EQ(p.at(1, 0), Value::String("kept"));
}

// ---------------------------------------------------------------------------
// Sorting reorders the typed lanes coherently (values + provenance).

TEST(ColumnarStorageTest, SortRowsReordersLanesAndProvenance) {
  Table t("t", Schema::FromNames({"a", "b"}));
  ASSERT_TRUE(t.AddRow({Value::String("z"), Value::Int(1)}, {"t3"}).ok());
  ASSERT_TRUE(t.AddRow({Value::Int(2), Value::String("y")}, {"t1"}).ok());
  ASSERT_TRUE(t.AddRow({Value::Null(), Value::Double(0.5)}, {"t2"}).ok());
  t.SortRowsLexicographic();
  // Value order: nulls < numbers < strings.
  EXPECT_TRUE(t.at(0, 0).is_null());
  EXPECT_EQ(t.at(1, 0), Value::Int(2));
  EXPECT_EQ(t.at(2, 0), Value::String("z"));
  EXPECT_EQ(t.provenance(0), std::vector<std::string>{"t2"});
  EXPECT_EQ(t.provenance(1), std::vector<std::string>{"t1"});
  EXPECT_EQ(t.provenance(2), std::vector<std::string>{"t3"});
}

}  // namespace
}  // namespace dialite
