// dialited — the DIALITE serving daemon.
//
//   dialited --snapshot lake.dialsnap [--port 8080] [--workers N]
//            [--max-admitted N] [--deadline-ms N] [--test-endpoints]
//
// Opens the snapshot (epoch 1), serves the discover/align/integrate
// pipeline over HTTP on 127.0.0.1:<port>, and drains gracefully on
// SIGINT/SIGTERM: the listener closes immediately (new connections are
// refused), in-flight requests run to completion, then the process exits 0.
// POST /reload swaps snapshots atomically without dropping a request.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/signal_util.h"
#include "obs/observability.h"
#include "server/server.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --snapshot <lake.dialsnap> [--port N] [--workers N]\n"
      "          [--max-admitted N] [--deadline-ms N] [--idle-ms N]\n"
      "          [--test-endpoints]\n",
      argv0);
  return 2;
}

bool ParseFlagU64(const std::string& arg, const char* name, int argc,
                  char** argv, int* i, uint64_t* out) {
  if (arg != name) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "dialited: %s needs a value\n", name);
    std::exit(2);
  }
  *out = std::strtoull(argv[++*i], nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  dialite::ServerOptions options;
  uint64_t port = options.port, workers = 0, max_admitted =
      options.max_admitted;
  uint64_t deadline_ms = options.default_deadline_ms;
  uint64_t idle_ms = options.idle_timeout_ms;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (ParseFlagU64(arg, "--port", argc, argv, &i, &port) ||
               ParseFlagU64(arg, "--workers", argc, argv, &i, &workers) ||
               ParseFlagU64(arg, "--max-admitted", argc, argv, &i,
                            &max_admitted) ||
               ParseFlagU64(arg, "--deadline-ms", argc, argv, &i,
                            &deadline_ms) ||
               ParseFlagU64(arg, "--idle-ms", argc, argv, &i, &idle_ms)) {
      // parsed into its variable
    } else if (arg == "--test-endpoints") {
      options.enable_test_endpoints = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (snapshot_path.empty()) return Usage(argv[0]);

  options.port = static_cast<uint16_t>(port);
  options.num_workers = static_cast<size_t>(workers);
  options.max_admitted = static_cast<size_t>(max_admitted);
  options.default_deadline_ms = deadline_ms;
  options.idle_timeout_ms = idle_ms;

  // Install the shutdown pipe BEFORE serving so a signal arriving during
  // snapshot open still drains instead of killing the process mid-write.
  const int signals[] = {SIGINT, SIGTERM};
  dialite::Status sig = dialite::ShutdownSignal::Install(signals, 2);
  if (!sig.ok()) {
    std::fprintf(stderr, "dialited: %s\n", sig.message().c_str());
    return 1;
  }

  dialite::ObservabilityContext obs;
  dialite::DialiteServer server(options, &obs);
  dialite::Status st = server.Start(snapshot_path);
  if (!st.ok()) {
    std::fprintf(stderr, "dialited: %s\n", st.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "dialited: serving %s on 127.0.0.1:%u\n",
               snapshot_path.c_str(), server.port());

  int received = dialite::ShutdownSignal::Wait();
  std::fprintf(stderr, "dialited: signal %d, draining...\n", received);
  server.Shutdown();
  std::fprintf(stderr, "dialited: drained, exiting\n");
  return 0;
}
