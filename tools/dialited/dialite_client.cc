// dialite_client — smoke driver for dialited (curl-less CI environments).
//
//   dialite_client get    <port> <target>                 one GET
//   dialite_client post   <port> <target> [body-file]     one POST
//   dialite_client hammer <port> <target> <body-file> <threads> <reqs-per>
//
// get/post print the response body on stdout and exit 0 only for HTTP 200.
// hammer opens <threads> concurrent connections, each issuing <reqs-per>
// keep-alive POSTs, and exits 0 only when every response is 200 — the CI
// server-smoke job's concurrency probe (64 x discover against the
// generated lake).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "server/http.h"
#include "server/net.h"

namespace {

using dialite::NetThread;
using dialite::ReadHttpResponse;
using dialite::Result;
using dialite::SerializeHttpRequest;
using dialite::Status;
using dialite::TcpConn;
using dialite::TcpConnect;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s get    <port> <target>\n"
               "       %s post   <port> <target> [body-file]\n"
               "       %s hammer <port> <target> <body-file> <threads> "
               "<reqs-per>\n",
               argv0, argv0, argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

/// One request on a fresh connection; returns the HTTP status (or -1).
int DoOne(uint16_t port, const std::string& method, const std::string& target,
          const std::string& body, std::string* resp_body) {
  Result<TcpConn> conn = TcpConnect(port);
  if (!conn.ok()) {
    std::fprintf(stderr, "dialite_client: %s\n",
                 conn.status().message().c_str());
    return -1;
  }
  if (!conn->WriteAll(SerializeHttpRequest(method, target, body,
                                           /*close=*/true))
           .ok()) {
    return -1;
  }
  std::string buffer;
  int status = 0;
  Status st = ReadHttpResponse(*conn, &buffer, &status, resp_body);
  if (!st.ok()) {
    std::fprintf(stderr, "dialite_client: %s\n", st.message().c_str());
    return -1;
  }
  return status;
}

/// One hammer worker: a keep-alive connection issuing `reqs` POSTs.
void HammerWorker(uint16_t port, const std::string& target,
                  const std::string& body, int reqs, std::atomic<int>* ok,
                  std::atomic<int>* failed) {
  Result<TcpConn> conn = TcpConnect(port);
  if (!conn.ok()) {
    failed->fetch_add(reqs);
    return;
  }
  std::string buffer;
  for (int r = 0; r < reqs; ++r) {
    const bool last = r == reqs - 1;
    if (!conn->WriteAll(SerializeHttpRequest("POST", target, body, last))
             .ok()) {
      failed->fetch_add(reqs - r);
      return;
    }
    int status = 0;
    std::string resp_body;
    if (!ReadHttpResponse(*conn, &buffer, &status, &resp_body).ok()) {
      failed->fetch_add(reqs - r);
      return;
    }
    if (status == 200) {
      ok->fetch_add(1);
    } else {
      std::fprintf(stderr, "dialite_client: HTTP %d: %s\n", status,
                   resp_body.c_str());
      failed->fetch_add(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  const std::string mode = argv[1];
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[2]));
  const std::string target = argv[3];

  if (mode == "get" || mode == "post") {
    std::string body;
    if (mode == "post" && argc > 4 && !ReadFile(argv[4], &body)) {
      std::fprintf(stderr, "dialite_client: cannot read %s\n", argv[4]);
      return 1;
    }
    std::string resp_body;
    int status =
        DoOne(port, mode == "get" ? "GET" : "POST", target, body, &resp_body);
    std::printf("%s\n", resp_body.c_str());
    return status == 200 ? 0 : 1;
  }

  if (mode == "hammer") {
    if (argc != 7) return Usage(argv[0]);
    std::string body;
    if (!ReadFile(argv[4], &body)) {
      std::fprintf(stderr, "dialite_client: cannot read %s\n", argv[4]);
      return 1;
    }
    const int threads = std::atoi(argv[5]);
    const int reqs_per = std::atoi(argv[6]);
    if (threads <= 0 || reqs_per <= 0) return Usage(argv[0]);

    std::atomic<int> ok{0}, failed{0};
    {
      std::vector<std::unique_ptr<NetThread>> workers;
      workers.reserve(static_cast<size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        workers.push_back(std::make_unique<NetThread>([&, t] {
          (void)t;
          HammerWorker(port, target, body, reqs_per, &ok, &failed);
        }));
      }
    }  // NetThread joins on destruction
    std::printf("hammer: %d ok, %d failed (%d threads x %d requests)\n",
                ok.load(), failed.load(), threads, reqs_per);
    return failed.load() == 0 &&
                   ok.load() == threads * reqs_per
               ? 0
               : 1;
  }

  return Usage(argv[0]);
}
