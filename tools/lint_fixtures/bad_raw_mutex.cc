// Known-bad fixture for the raw-sync-primitive rule: raw std locking in
// src/ must be flagged (only common/sync.h may touch the std primitives).
#include <mutex>

namespace dialite {

std::mutex bad_mu;

int LockedAdd(int a, int b) {
  std::lock_guard<std::mutex> lock(bad_mu);
  return a + b;
}

}  // namespace dialite
