// Known-bad fixture for the raw-socket rule: BSD socket calls in src/
// outside src/server/net.{h,cc} must be flagged (the serving system's
// socket surface is confined to TcpConn/TcpListener).
#include <sys/socket.h>

namespace dialite {

int OpenRogueSocket() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  return fd;
}

}  // namespace dialite
