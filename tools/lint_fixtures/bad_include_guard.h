// Known-bad fixture: header with no include guard at all.

namespace dialite {

struct Unguarded {
  int x = 0;
};

}  // namespace dialite
