// Known-bad fixture: library code calling the deprecated row-materializing
// Table wrappers instead of the zero-copy ColumnView equivalents.
#include "table/table.h"

namespace dialite {

size_t CountDistinct(const Table& t) {
  return t.DistinctColumnValues(0).size();  // rule: deprecated-row-api
}

}  // namespace dialite
