#ifndef DIALITE_TOOLS_LINT_FIXTURES_BAD_USING_NAMESPACE_H_
#define DIALITE_TOOLS_LINT_FIXTURES_BAD_USING_NAMESPACE_H_

// Known-bad fixture: using-directive in a header leaks into every includer.
#include <string>

using namespace std;  // rule: using-namespace-header

#endif  // DIALITE_TOOLS_LINT_FIXTURES_BAD_USING_NAMESPACE_H_
