// Known-good fixture: mentions every forbidden construct ONLY inside comments
// and string literals, which the linter must ignore:
//   std::thread t; using namespace std; rand(); std::random_device rd;
//   t.ColumnValues(0); t.DistinctColumnValues(0); t.ColumnTokenSet(0);
#include <string>

namespace dialite {

// == Table::ColumnValues (doc-comment cross-reference, must not fire)
const char* Banner() {
  return "std::thread rand() using namespace std ColumnTokenSet(";
}

}  // namespace dialite
