// Known-bad fixture: spawning a raw std::thread in library code instead of
// routing through common/thread_pool. Note std::thread::hardware_concurrency
// below must NOT fire — it is a static query, not a spawn.
#include <thread>

namespace dialite {

void Fanout() {
  unsigned n = std::thread::hardware_concurrency();  // fine: static query
  (void)n;
  std::thread worker([] {});  // rule: naked-thread
  worker.join();
}

}  // namespace dialite
