#pragma once
// Known-bad fixture: the project standard is #ifndef guards, not #pragma once.

namespace dialite {

struct PragmaGuarded {
  int x = 0;
};

}  // namespace dialite
