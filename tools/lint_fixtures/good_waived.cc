// Known-good fixture: a real violation carrying an explicit waiver comment.
#include <thread>

namespace dialite {

void Bootstrap() {
  std::thread t([] {});  // dialite-lint: allow(naked-thread)
  t.join();
}

}  // namespace dialite
