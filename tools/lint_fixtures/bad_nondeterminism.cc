// Known-bad fixture: unseeded randomness outside src/common/rng breaks the
// reproducibility guarantee (bit-identical indexes/sketches across runs).
#include <cstdlib>
#include <random>

namespace dialite {

int Roll() {
  std::random_device rd;        // rule: nondeterminism
  return rand() % 6 + (int)rd();  // rule: nondeterminism (rand)
}

}  // namespace dialite
