/// snapshot_inspect — dump a dialite lake snapshot's header, section
/// table, and aggregate stats as JSON (the debugging front door for the
/// container format; no payload is decoded beyond the lake manifest).
///
///   snapshot_inspect LAKE.snap            validate checksums, dump JSON
///   snapshot_inspect --no-verify LAKE.snap  skip section CRC verification
///
/// Exit: 0 = valid snapshot dumped, 1 = unreadable/corrupt (the Status is
/// reported in a JSON error object on stdout), 2 = usage.

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "snapshot/bytes.h"
#include "snapshot/format.h"
#include "snapshot/snapshot_reader.h"

namespace {

using namespace dialite;

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Coarse kind of a section, for the per-kind byte aggregation.
const char* SectionKind(const std::string& name) {
  if (HasPrefix(name, kSectionTablePrefix)) return "table";
  if (HasPrefix(name, kSectionIndexPrefix)) return "index";
  if (name == kSectionLakeManifest) return "manifest";
  if (name == kSectionSketchMinhash) return "sketch";
  return "other";
}

int Inspect(const std::string& path, bool verify) {
  SnapshotReadOptions options;
  options.verify_section_crcs = verify;
  Result<SnapshotReader> reader = SnapshotReader::Open(path, options);
  std::string out;
  if (!reader.ok()) {
    out += "{\n  \"file\": ";
    AppendJsonString(&out, path);
    out += ",\n  \"error\": ";
    AppendJsonString(&out, reader.status().ToString());
    out += "\n}\n";
    std::fputs(out.c_str(), stdout);
    return 1;
  }

  uint64_t table_sections = 0, index_sections = 0;
  uint64_t table_bytes = 0, index_bytes = 0, sketch_bytes = 0;
  uint64_t payload_bytes = 0;
  for (const SnapshotSection& s : reader->sections()) {
    payload_bytes += s.length;
    const char* kind = SectionKind(s.name);
    if (std::strcmp(kind, "table") == 0) {
      ++table_sections;
      table_bytes += s.length;
    } else if (std::strcmp(kind, "index") == 0) {
      ++index_sections;
      index_bytes += s.length;
    } else if (std::strcmp(kind, "sketch") == 0) {
      sketch_bytes += s.length;
    }
  }

  out += "{\n  \"file\": ";
  AppendJsonString(&out, path);
  out += ",\n  \"format_version\": " +
         std::to_string(reader->format_version());
  out += ",\n  \"file_size\": " + std::to_string(reader->file_size());
  out += ",\n  \"checksums_verified\": ";
  out += verify ? "true" : "false";
  out += ",\n  \"sections\": [";
  bool first = true;
  for (const SnapshotSection& s : reader->sections()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    AppendJsonString(&out, s.name);
    out += ", \"kind\": ";
    AppendJsonString(&out, SectionKind(s.name));
    out += ", \"offset\": " + std::to_string(s.offset);
    out += ", \"length\": " + std::to_string(s.length);
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", s.crc32);
    out += ", \"crc32\": \"" + std::string(crc) + "\"}";
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"stats\": {";
  out += "\n    \"sections\": " + std::to_string(reader->sections().size());
  out += ",\n    \"tables\": " + std::to_string(table_sections);
  out += ",\n    \"indexes\": " + std::to_string(index_sections);
  out += ",\n    \"payload_bytes\": " + std::to_string(payload_bytes);
  out += ",\n    \"table_bytes\": " + std::to_string(table_bytes);
  out += ",\n    \"index_bytes\": " + std::to_string(index_bytes);
  out += ",\n    \"sketch_bytes\": " + std::to_string(sketch_bytes);
  out += ",\n    \"container_overhead_bytes\": " +
         std::to_string(reader->file_size() - payload_bytes);
  out += "\n  }\n}\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = true;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-verify") == 0) {
      verify = false;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: snapshot_inspect [--no-verify] FILE\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: snapshot_inspect [--no-verify] FILE\n");
    return 2;
  }
  return Inspect(path, verify);
}
