#include "analyze/checks.h"

#include <algorithm>

namespace dialite {
namespace analyze {

namespace {

using Kind = Token::Kind;

/// True if any token in [begin, end) is an identifier from `names`
/// immediately followed by '('.
bool CallsAnyOf(const std::vector<Token>& ts, size_t begin, size_t end,
                const std::unordered_set<std::string>& names) {
  for (size_t i = begin; i + 1 < end && i + 1 < ts.size(); ++i) {
    if (ts[i].kind != Kind::kIdent) continue;
    if (!names.count(ts[i].text)) continue;
    if (ts[i + 1].kind == Kind::kPunct && ts[i + 1].text == "(") return true;
  }
  return false;
}

void CheckCancellation(const Project& project, const Policy& policy,
                       const CallGraph& graph,
                       const std::vector<size_t>& reachable,
                       std::vector<Finding>* out) {
  for (size_t id : reachable) {
    const ParsedFile& pf = project.file_of(id);
    if (policy.IsExempt("no-cancel", pf.lex.path)) continue;
    const FunctionInfo& fn = project.fn(id);
    for (const Loop& loop : fn.loops) {
      if (!CallsAnyOf(pf.lex.tokens, loop.body_begin, loop.body_end,
                      policy.hot)) {
        continue;
      }
      if (CallsAnyOf(pf.lex.tokens, loop.body_begin, loop.body_end,
                     policy.cancel_polls)) {
        continue;
      }
      if (HasWaiver(pf.lex, "no-cancel", loop.line)) continue;
      out->push_back(
          {pf.lex.path, loop.line, "no-cancel",
           "loop in request-reachable '" + fn.qual_name +
               "' calls a scoring/merge helper without polling its "
               "CancelToken; poll or waive with // analyze: no-cancel(why)"});
    }
  }
  (void)graph;
}

void CheckBlocking(const Project& project, const Policy& policy,
                   const std::vector<size_t>& reachable,
                   std::vector<Finding>* out) {
  for (size_t id : reachable) {
    const ParsedFile& pf = project.file_of(id);
    if (policy.IsExempt("blocking", pf.lex.path)) continue;
    const FunctionInfo& fn = project.fn(id);
    const std::vector<Token>& ts = pf.lex.tokens;
    for (size_t i = fn.body_begin; i < fn.body_end && i < ts.size(); ++i) {
      if (ts[i].kind != Kind::kIdent) continue;
      if (!policy.blocking.count(ts[i].text)) continue;
      if (HasWaiver(pf.lex, "allow-blocking", ts[i].line)) continue;
      out->push_back(
          {pf.lex.path, ts[i].line, "blocking",
           "'" + ts[i].text + "' in request-reachable '" + fn.qual_name +
               "' can block the serving thread; move it off the request "
               "path or waive with // analyze: allow-blocking(why)"});
    }
  }
}

bool TypeHasToken(const Member& m,
                  const std::unordered_set<std::string>& names) {
  for (const std::string& t : m.type_tokens) {
    if (names.count(t)) return true;
  }
  return false;
}

bool TypeHasPointer(const Member& m) {
  return std::find(m.type_tokens.begin(), m.type_tokens.end(), "*") !=
         m.type_tokens.end();
}

void CheckGuardedFields(const Project& project, const Policy& policy,
                        std::vector<Finding>* out) {
  for (const ParsedFile& pf : project.files) {
    if (policy.IsExempt("no-guard", pf.lex.path)) continue;
    for (const ClassInfo& cls : pf.classes) {
      bool owns_lock = false;
      for (const Member& m : cls.members) {
        if (TypeHasToken(m, policy.mutex_types) && !TypeHasPointer(m) &&
            !m.is_reference) {
          owns_lock = true;
          break;
        }
      }
      if (!owns_lock) continue;
      for (const Member& m : cls.members) {
        if (m.guarded || m.is_static || m.is_const || m.is_reference) continue;
        if (TypeHasToken(m, policy.mutex_types)) continue;
        if (TypeHasToken(m, policy.guard_exempt_types)) continue;
        if (HasWaiver(pf.lex, "no-guard", m.line)) continue;
        out->push_back(
            {pf.lex.path, m.line, "no-guard",
             "mutable member '" + m.name + "' of lock-owning class '" +
                 cls.qual_name +
                 "' has no GUARDED_BY annotation; annotate or waive with "
                 "// analyze: no-guard(why)"});
      }
    }
  }
}

void CheckViewEscapes(const Project& project, const Policy& policy,
                      std::vector<Finding>* out) {
  for (const ParsedFile& pf : project.files) {
    if (policy.IsExempt("view-escape", pf.lex.path)) continue;
    if (policy.ViewAllowed(pf.lex.path)) continue;
    for (const ClassInfo& cls : pf.classes) {
      for (const Member& m : cls.members) {
        if (!TypeHasToken(m, policy.view_types)) continue;
        if (HasWaiver(pf.lex, "allow-view", m.line)) continue;
        out->push_back(
            {pf.lex.path, m.line, "view-escape",
             "member '" + m.name + "' of '" + cls.qual_name +
                 "' stores a borrowed view type; views must stay "
                 "parameters/locals so they cannot outlive their snapshot "
                 "anchor (waive with // analyze: allow-view(why))"});
      }
    }
  }
}

/// Symbol-aware port of the linter's naked-thread rule: `std::thread`
/// appearing as a type use (not `std::thread::id` etc.).
void CheckNakedThread(const Project& project, const Policy& policy,
                      std::vector<Finding>* out) {
  for (const ParsedFile& pf : project.files) {
    if (policy.IsExempt("naked-thread", pf.lex.path)) continue;
    const std::vector<Token>& ts = pf.lex.tokens;
    for (size_t i = 0; i + 2 < ts.size(); ++i) {
      if (!(ts[i].kind == Kind::kIdent && ts[i].text == "std")) continue;
      if (!(ts[i + 1].kind == Kind::kPunct && ts[i + 1].text == "::")) continue;
      if (!(ts[i + 2].kind == Kind::kIdent && ts[i + 2].text == "thread")) {
        continue;
      }
      // std::thread::id and friends are fine — only the owning type is the
      // rule's target.
      if (i + 3 < ts.size() && ts[i + 3].kind == Kind::kPunct &&
          ts[i + 3].text == "::") {
        continue;
      }
      const int line = ts[i].line;
      if (HasLintWaiver(pf.lex, "naked-thread", line)) continue;
      if (HasWaiver(pf.lex, "allow-thread", line)) continue;
      out->push_back(
          {pf.lex.path, line, "naked-thread",
           "raw std::thread; use dialite::ThreadPool or NetThread "
           "(waive with // dialite-lint: allow(naked-thread))"});
    }
  }
}

/// Symbol-aware port of the linter's raw-socket rule: global-namespace
/// socket syscalls and the socket headers.
void CheckRawSocket(const Project& project, const Policy& policy,
                    std::vector<Finding>* out) {
  static const std::unordered_set<std::string> kSocketFns = {
      "socket", "accept", "accept4", "bind",       "listen",
      "connect", "recv",  "send",    "setsockopt", "getsockopt",
      "shutdown", "getaddrinfo", "freeaddrinfo"};
  static const std::vector<std::string> kSocketHeaders = {
      "sys/socket.h", "netinet/", "arpa/inet.h", "netdb.h"};
  for (const ParsedFile& pf : project.files) {
    if (policy.IsExempt("raw-socket", pf.lex.path)) continue;
    for (const Include& inc : pf.lex.includes) {
      bool hit = false;
      for (const std::string& h : kSocketHeaders) {
        if (inc.path.compare(0, h.size(), h) == 0) hit = true;
      }
      if (!hit) continue;
      if (HasLintWaiver(pf.lex, "raw-socket", inc.line)) continue;
      if (HasWaiver(pf.lex, "allow-socket", inc.line)) continue;
      out->push_back({pf.lex.path, inc.line, "raw-socket",
                      "socket header <" + inc.path +
                          "> outside the net frame layer (waive with "
                          "// dialite-lint: allow(raw-socket))"});
    }
    const std::vector<Token>& ts = pf.lex.tokens;
    for (size_t i = 0; i + 2 < ts.size(); ++i) {
      if (!(ts[i].kind == Kind::kPunct && ts[i].text == "::")) continue;
      // Global-namespace qualifier: no identifier (or closing token) before.
      if (i > 0 && (ts[i - 1].kind == Kind::kIdent ||
                    (ts[i - 1].kind == Kind::kPunct &&
                     (ts[i - 1].text == ">" || ts[i - 1].text == ")")))) {
        continue;
      }
      if (ts[i + 1].kind != Kind::kIdent || !kSocketFns.count(ts[i + 1].text)) {
        continue;
      }
      if (!(ts[i + 2].kind == Kind::kPunct && ts[i + 2].text == "(")) continue;
      const int line = ts[i].line;
      if (HasLintWaiver(pf.lex, "raw-socket", line)) continue;
      if (HasWaiver(pf.lex, "allow-socket", line)) continue;
      out->push_back({pf.lex.path, line, "raw-socket",
                      "raw ::" + ts[i + 1].text +
                          "() outside the net frame layer (waive with "
                          "// dialite-lint: allow(raw-socket))"});
    }
  }
}

// --------------------------------------------------------------------------
// Data-flow checks: statement-level CFG walks consuming the interprocedural
// summaries. All four share the walk idiom — a forward scan of the event
// stream with a scope stack — which is what makes them flow-sensitive where
// the PR-9 checks were only reachability-sensitive.
// --------------------------------------------------------------------------

/// A live RAII lock guard during the CFG walk.
struct LiveGuard {
  const CfgNode* node = nullptr;  ///< the kLockAcquire event
};

/// lock-blocking: no call made while a MutexLock/WriterLock guard is live
/// may transitively reach a blocking identifier. Flow-sensitive (the guard
/// dies at its scope close) and interprocedural (the callee's may-block
/// summary, with a witness chain in the message).
void CheckLockBlocking(const Project& project, const Policy& policy,
                       const DataFlow& flow, std::vector<Finding>* out) {
  for (size_t id = 0; id < project.fns.size(); ++id) {
    const ParsedFile& pf = project.file_of(id);
    if (policy.IsExempt("lock-blocking", pf.lex.path)) continue;
    const FunctionInfo& fn = project.fn(id);
    std::vector<std::vector<LiveGuard>> frames(1);
    for (const CfgNode& node : flow.cfg(id).nodes) {
      switch (node.kind) {
        case CfgNode::Kind::kScopeOpen:
          frames.emplace_back();
          break;
        case CfgNode::Kind::kScopeClose:
          if (frames.size() > 1) frames.pop_back();
          break;
        case CfgNode::Kind::kLockAcquire:
          frames.back().push_back({&node});
          break;
        case CfgNode::Kind::kCall: {
          const LiveGuard* held = nullptr;
          for (const auto& frame : frames) {
            if (!frame.empty()) held = &frame.back();
          }
          if (held == nullptr) break;
          const bool direct = policy.blocking.count(node.text) != 0;
          if (!direct && !flow.NameMayBlock(node.text)) break;
          if (HasWaiver(pf.lex, "lock-blocking", node.line)) break;
          if (HasWaiver(pf.lex, "lock-blocking", held->node->line)) break;
          const std::string chain =
              direct ? node.text : flow.BlockChain(node.text);
          out->push_back(
              {pf.lex.path, node.line, "lock-blocking",
               "'" + held->node->text + " " + held->node->detail +
                   "' (line " + std::to_string(held->node->line) +
                   ") is held in '" + fn.qual_name + "' across '" +
                   node.text + "', which can block (" + chain +
                   "); shrink the critical section or waive with "
                   "// analyze: lock-blocking(why)"});
          break;
        }
        default:
          break;
      }
    }
  }
}

/// hot-alloc [note severity]: per-iteration allocation inside a
/// request-reachable loop that polls cancellation or calls a hot helper —
/// i.e. a loop already known to be on the serving hot path. This is the
/// inventory that seeds the per-query arena work (ROADMAP item 4); the
/// committed baseline pins it so NEW allocations fail the CI diff gate.
void CheckHotLoopAlloc(const Project& project, const Policy& policy,
                       const DataFlow& flow,
                       const std::vector<size_t>& reachable,
                       std::vector<Finding>* out) {
  for (size_t id : reachable) {
    const ParsedFile& pf = project.file_of(id);
    if (policy.IsExempt("hot-alloc", pf.lex.path)) continue;
    const FunctionInfo& fn = project.fn(id);
    for (const Loop& loop : fn.loops) {
      const bool hot =
          CallsAnyOf(pf.lex.tokens, loop.body_begin, loop.body_end,
                     policy.cancel_polls) ||
          CallsAnyOf(pf.lex.tokens, loop.body_begin, loop.body_end,
                     policy.hot);
      if (!hot) continue;
      std::vector<std::string> witnesses;
      auto add = [&](const std::string& w) {
        for (const std::string& have : witnesses) {
          if (have == w) return;
        }
        witnesses.push_back(w);
      };
      for (const CfgNode& node : flow.cfg(id).nodes) {
        if (node.token < loop.body_begin || node.token >= loop.body_end) {
          continue;
        }
        if (node.kind == CfgNode::Kind::kAlloc) {
          add(node.text);
        } else if (node.kind == CfgNode::Kind::kCall &&
                   !policy.alloc_fns.count(node.text) &&
                   flow.NameMayAlloc(node.text)) {
          add(flow.AllocChain(node.text));
        }
      }
      if (witnesses.empty()) continue;
      if (HasWaiver(pf.lex, "hot-alloc", loop.line)) continue;
      std::string joined;
      const size_t shown = witnesses.size() < 6 ? witnesses.size() : 6;
      for (size_t i = 0; i < shown; ++i) {
        if (i > 0) joined += ", ";
        joined += witnesses[i];
      }
      if (witnesses.size() > shown) {
        joined += ", +" + std::to_string(witnesses.size() - shown) + " more";
      }
      out->push_back({pf.lex.path, loop.line, "hot-alloc",
                      "request-hot loop in '" + fn.qual_name +
                          "' allocates per iteration via: " + joined +
                          "; arena-allocator work-list entry (ROADMAP "
                          "item 4)",
                      Finding::Severity::kNote});
    }
  }
}

bool IsStmtBoundary(const Token& t) {
  return t.kind == Kind::kPunct &&
         (t.text == ";" || t.text == "{" || t.text == "}");
}

bool AllCapsMacroName(const std::string& s) {
  if (s.find('_') == std::string::npos) return false;
  for (char c : s) {
    if (!(c == '_' || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))) {
      return false;
    }
  }
  return true;
}

/// status-drop: a Status/Result produced by a callee and lost at the call
/// boundary. Two shapes, both invisible to class-level [[nodiscard]]:
///   (a) `auto st = Load(...); ... st never consulted again`
///   (b) `obj.Load(...);` as a bare expression statement where every
///       definition of Load in the scanned set returns a status type (the
///       aliasing case: the concrete return type is behind auto/typedef or
///       a template, so the compiler attribute never fires).
void CheckStatusDrop(const Project& project, const Policy& policy,
                     const DataFlow& flow, std::vector<Finding>* out) {
  for (size_t id = 0; id < project.fns.size(); ++id) {
    const ParsedFile& pf = project.file_of(id);
    if (policy.IsExempt("status-drop", pf.lex.path)) continue;
    const FunctionInfo& fn = project.fn(id);
    const std::vector<Token>& ts = pf.lex.tokens;
    const size_t end = fn.body_end < ts.size() ? fn.body_end : ts.size();
    for (size_t s = fn.body_begin; s < end; ++s) {
      if (s != fn.body_begin && !IsStmtBoundary(ts[s - 1])) continue;
      const Token& t0 = ts[s];
      if (t0.kind != Kind::kIdent) continue;

      // (a) binding: [auto|Status|Result<...>] name = Outermost(...)...;
      if (policy.status_types.count(t0.text) || t0.text == "auto") {
        size_t j = s + 1;
        if (j < end && ts[j].kind == Kind::kPunct && ts[j].text == "<") {
          int depth = 0;
          while (j < end) {
            if (ts[j].kind == Kind::kPunct) {
              if (ts[j].text == "<") ++depth;
              if (ts[j].text == ">" && --depth == 0) {
                ++j;
                break;
              }
              if (ts[j].text == ";") break;
            }
            ++j;
          }
        }
        if (j + 1 < end && ts[j].kind == Kind::kIdent &&
            ts[j + 1].kind == Kind::kPunct && ts[j + 1].text == "=") {
          const std::string var = ts[j].text;
          const int var_line = ts[j].line;
          // Find the outermost call on the right-hand side.
          size_t stmt_end = j + 2;
          std::string callee;
          while (stmt_end < end && !(ts[stmt_end].kind == Kind::kPunct &&
                                     ts[stmt_end].text == ";")) {
            if (callee.empty() && ts[stmt_end].kind == Kind::kIdent &&
                stmt_end + 1 < end && ts[stmt_end + 1].text == "(") {
              callee = ts[stmt_end].text;
            }
            ++stmt_end;
          }
          const bool from_status_call =
              !callee.empty() && !AllCapsMacroName(callee) &&
              (flow.NameReturnsStatus(callee) ||
               policy.status_types.count(t0.text) != 0);
          if (from_status_call && policy.status_types.count(t0.text) == 0 &&
              !flow.NameReturnsStatus(callee)) {
            // `auto` binding from a non-status call: not ours.
          } else if (from_status_call) {
            bool consulted = false;
            for (size_t k = stmt_end + 1; k < end; ++k) {
              if (ts[k].kind == Kind::kIdent && ts[k].text == var) {
                consulted = true;
                break;
              }
            }
            if (!consulted && !HasWaiver(pf.lex, "status-drop", var_line)) {
              out->push_back(
                  {pf.lex.path, var_line, "status-drop",
                   "'" + var + "' in '" + fn.qual_name +
                       "' binds the status returned by '" + callee +
                       "' but is never consulted; handle it, propagate "
                       "with DIALITE_RETURN_IF_ERROR, or waive with "
                       "// analyze: status-drop(why)"});
            }
          }
          s = stmt_end;
          continue;
        }
      }

      // (b) bare expression statement: obj.Method(...); / Free(...);
      size_t k = s;
      while (k + 1 < end && ts[k].kind == Kind::kIdent &&
             ts[k + 1].kind == Kind::kPunct &&
             (ts[k + 1].text == "::" || ts[k + 1].text == "." ||
              ts[k + 1].text == "->")) {
        k += 2;
      }
      if (k + 1 >= end || ts[k].kind != Kind::kIdent ||
          !(ts[k + 1].kind == Kind::kPunct && ts[k + 1].text == "(")) {
        continue;
      }
      const std::string& callee = ts[k].text;
      const size_t close = SkipBalanced(ts, k + 1, '(', ')');
      if (close >= end ||
          !(ts[close].kind == Kind::kPunct && ts[close].text == ";")) {
        continue;
      }
      if (AllCapsMacroName(callee) || !flow.NameReturnsStatus(callee)) {
        continue;
      }
      if (HasWaiver(pf.lex, "status-drop", ts[k].line)) continue;
      out->push_back(
          {pf.lex.path, ts[k].line, "status-drop",
           "status returned by '" + callee + "' is discarded in '" +
               fn.qual_name +
               "'; every definition of it returns Status/Result, so the "
               "temporary vanishes unchecked (waive with "
               "// analyze: status-drop(why))"});
    }
  }
}

/// view-return: extends the member-only view-escape audit to the two other
/// ways a borrowed view can outlive its snapshot anchor — being returned
/// from a non-owner layer, or being captured into a lambda handed to a
/// deferred-execution point (policy `defer`, e.g. ThreadPool::Submit).
void CheckViewReturn(const Project& project, const Policy& policy,
                     const DataFlow& flow, std::vector<Finding>* out) {
  for (size_t id = 0; id < project.fns.size(); ++id) {
    const ParsedFile& pf = project.file_of(id);
    if (policy.IsExempt("view-return", pf.lex.path)) continue;
    if (policy.ViewAllowed(pf.lex.path)) continue;
    const FunctionInfo& fn = project.fn(id);

    for (const std::string& t : fn.ret_type) {
      if (!policy.view_types.count(t)) continue;
      if (HasWaiver(pf.lex, "view-return", fn.line)) break;
      out->push_back(
          {pf.lex.path, fn.line, "view-return",
           "'" + fn.qual_name + "' returns borrowed view type '" + t +
               "' outside the owner layers; return an owning type or waive "
               "with // analyze: view-return(why)"});
      break;
    }

    const std::vector<Token>& ts = pf.lex.tokens;
    std::vector<std::string> view_locals;
    for (const CfgNode& node : flow.cfg(id).nodes) {
      if (node.kind == CfgNode::Kind::kViewDecl) {
        view_locals.push_back(node.detail);
        continue;
      }
      if (node.kind != CfgNode::Kind::kCall ||
          !policy.defer.count(node.text)) {
        continue;
      }
      // Scan the deferred call's argument range: any mention of a view
      // type or a view-typed local means the task borrows snapshot state
      // whose anchor it does not pin.
      const size_t open = node.token + 1;
      const size_t close = SkipBalanced(ts, open, '(', ')');
      std::string witness;
      for (size_t i = open; i + 1 < close; ++i) {
        if (ts[i].kind != Kind::kIdent) continue;
        if (policy.view_types.count(ts[i].text)) {
          witness = ts[i].text;
          break;
        }
        for (const std::string& local : view_locals) {
          if (ts[i].text == local) {
            witness = local;
            break;
          }
        }
        if (!witness.empty()) break;
      }
      if (witness.empty()) continue;
      if (HasWaiver(pf.lex, "view-return", node.line)) continue;
      out->push_back(
          {pf.lex.path, node.line, "view-return",
           "deferred task passed to '" + node.text + "' in '" +
               fn.qual_name + "' captures borrowed view '" + witness +
               "'; the task can outlive the snapshot anchor (copy the "
               "data or pin the epoch; waive with "
               "// analyze: view-return(why))"});
    }
  }
}

/// stale-waiver [warning]: every analyze waiver must either suppress a
/// finding this run or be removed — waivers age out instead of rotting.
void CheckStaleWaivers(const Project& project, std::vector<Finding>* out) {
  static const std::unordered_set<std::string> kKnown = {
      "no-cancel",   "allow-blocking", "no-guard",    "allow-view",
      "allow-thread", "allow-socket",  "lock-blocking", "hot-alloc",
      "status-drop", "view-return"};
  for (const ParsedFile& pf : project.files) {
    for (const Waiver& w : pf.lex.waivers) {
      if (w.directive == "lint-allow") continue;  // shared with dialite_lint
      if (!kKnown.count(w.directive)) {
        out->push_back({pf.lex.path, w.line, "stale-waiver",
                        "waiver names unknown directive '" + w.directive +
                            "'; it suppresses nothing",
                        Finding::Severity::kWarning});
        continue;
      }
      if (w.used) continue;
      out->push_back({pf.lex.path, w.line, "stale-waiver",
                      "waiver '" + w.directive + "(" + w.detail +
                          ")' no longer suppresses any finding; remove it",
                      Finding::Severity::kWarning});
    }
  }
}

void CheckIncludeCycles(const Project& project, std::vector<Finding>* out) {
  IncludeGraph graph(project);
  std::vector<std::string> cycle = graph.FindCycle();
  if (cycle.empty()) return;
  std::string msg = "include cycle: ";
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) msg += " -> ";
    msg += cycle[i];
  }
  out->push_back({cycle.front(), 1, "include-cycle", msg});
}

}  // namespace

const char* SeverityName(Finding::Severity severity) {
  switch (severity) {
    case Finding::Severity::kError:
      return "error";
    case Finding::Severity::kWarning:
      return "warning";
    case Finding::Severity::kNote:
      return "note";
  }
  return "error";
}

std::vector<Finding> RunChecks(const Project& project, const Policy& policy) {
  std::vector<Finding> out;
  CallGraph graph(project);
  const std::vector<size_t> reachable =
      graph.Reachable(policy.seeds, policy.stops);
  DataFlow flow(project, graph, policy);
  CheckCancellation(project, policy, graph, reachable, &out);
  CheckBlocking(project, policy, reachable, &out);
  CheckGuardedFields(project, policy, &out);
  CheckViewEscapes(project, policy, &out);
  CheckNakedThread(project, policy, &out);
  CheckRawSocket(project, policy, &out);
  CheckIncludeCycles(project, &out);
  CheckLockBlocking(project, policy, flow, &out);
  CheckHotLoopAlloc(project, policy, flow, reachable, &out);
  CheckStatusDrop(project, policy, flow, &out);
  CheckViewReturn(project, policy, flow, &out);
  // The stale-waiver pass must run LAST: it reads the `used` marks the
  // other checks leave on waivers they consult.
  CheckStaleWaivers(project, &out);
  if (!flow.converged()) {
    out.push_back({"<dataflow>", 0, "fixpoint",
                   "interprocedural fixpoint hit the pass bound (" +
                       std::to_string(DataFlow::kMaxFixpointPasses) +
                       "); summaries may under-approximate",
                   Finding::Severity::kWarning});
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.check != b.check) return a.check < b.check;
    return a.message < b.message;
  });
  return out;
}

}  // namespace analyze
}  // namespace dialite
