#include "analyze/checks.h"

#include <algorithm>

namespace dialite {
namespace analyze {

namespace {

using Kind = Token::Kind;

/// True if any token in [begin, end) is an identifier from `names`
/// immediately followed by '('.
bool CallsAnyOf(const std::vector<Token>& ts, size_t begin, size_t end,
                const std::unordered_set<std::string>& names) {
  for (size_t i = begin; i + 1 < end && i + 1 < ts.size(); ++i) {
    if (ts[i].kind != Kind::kIdent) continue;
    if (!names.count(ts[i].text)) continue;
    if (ts[i + 1].kind == Kind::kPunct && ts[i + 1].text == "(") return true;
  }
  return false;
}

void CheckCancellation(const Project& project, const Policy& policy,
                       const CallGraph& graph,
                       const std::vector<size_t>& reachable,
                       std::vector<Finding>* out) {
  for (size_t id : reachable) {
    const ParsedFile& pf = project.file_of(id);
    if (policy.IsExempt("no-cancel", pf.lex.path)) continue;
    const FunctionInfo& fn = project.fn(id);
    for (const Loop& loop : fn.loops) {
      if (!CallsAnyOf(pf.lex.tokens, loop.body_begin, loop.body_end,
                      policy.hot)) {
        continue;
      }
      if (CallsAnyOf(pf.lex.tokens, loop.body_begin, loop.body_end,
                     policy.cancel_polls)) {
        continue;
      }
      if (HasWaiver(pf.lex, "no-cancel", loop.line)) continue;
      out->push_back(
          {pf.lex.path, loop.line, "no-cancel",
           "loop in request-reachable '" + fn.qual_name +
               "' calls a scoring/merge helper without polling its "
               "CancelToken; poll or waive with // analyze: no-cancel(why)"});
    }
  }
  (void)graph;
}

void CheckBlocking(const Project& project, const Policy& policy,
                   const std::vector<size_t>& reachable,
                   std::vector<Finding>* out) {
  for (size_t id : reachable) {
    const ParsedFile& pf = project.file_of(id);
    if (policy.IsExempt("blocking", pf.lex.path)) continue;
    const FunctionInfo& fn = project.fn(id);
    const std::vector<Token>& ts = pf.lex.tokens;
    for (size_t i = fn.body_begin; i < fn.body_end && i < ts.size(); ++i) {
      if (ts[i].kind != Kind::kIdent) continue;
      if (!policy.blocking.count(ts[i].text)) continue;
      if (HasWaiver(pf.lex, "allow-blocking", ts[i].line)) continue;
      out->push_back(
          {pf.lex.path, ts[i].line, "blocking",
           "'" + ts[i].text + "' in request-reachable '" + fn.qual_name +
               "' can block the serving thread; move it off the request "
               "path or waive with // analyze: allow-blocking(why)"});
    }
  }
}

bool TypeHasToken(const Member& m,
                  const std::unordered_set<std::string>& names) {
  for (const std::string& t : m.type_tokens) {
    if (names.count(t)) return true;
  }
  return false;
}

bool TypeHasPointer(const Member& m) {
  return std::find(m.type_tokens.begin(), m.type_tokens.end(), "*") !=
         m.type_tokens.end();
}

void CheckGuardedFields(const Project& project, const Policy& policy,
                        std::vector<Finding>* out) {
  for (const ParsedFile& pf : project.files) {
    if (policy.IsExempt("no-guard", pf.lex.path)) continue;
    for (const ClassInfo& cls : pf.classes) {
      bool owns_lock = false;
      for (const Member& m : cls.members) {
        if (TypeHasToken(m, policy.mutex_types) && !TypeHasPointer(m) &&
            !m.is_reference) {
          owns_lock = true;
          break;
        }
      }
      if (!owns_lock) continue;
      for (const Member& m : cls.members) {
        if (m.guarded || m.is_static || m.is_const || m.is_reference) continue;
        if (TypeHasToken(m, policy.mutex_types)) continue;
        if (TypeHasToken(m, policy.guard_exempt_types)) continue;
        if (HasWaiver(pf.lex, "no-guard", m.line)) continue;
        out->push_back(
            {pf.lex.path, m.line, "no-guard",
             "mutable member '" + m.name + "' of lock-owning class '" +
                 cls.qual_name +
                 "' has no GUARDED_BY annotation; annotate or waive with "
                 "// analyze: no-guard(why)"});
      }
    }
  }
}

void CheckViewEscapes(const Project& project, const Policy& policy,
                      std::vector<Finding>* out) {
  for (const ParsedFile& pf : project.files) {
    if (policy.IsExempt("view-escape", pf.lex.path)) continue;
    if (policy.ViewAllowed(pf.lex.path)) continue;
    for (const ClassInfo& cls : pf.classes) {
      for (const Member& m : cls.members) {
        if (!TypeHasToken(m, policy.view_types)) continue;
        if (HasWaiver(pf.lex, "allow-view", m.line)) continue;
        out->push_back(
            {pf.lex.path, m.line, "view-escape",
             "member '" + m.name + "' of '" + cls.qual_name +
                 "' stores a borrowed view type; views must stay "
                 "parameters/locals so they cannot outlive their snapshot "
                 "anchor (waive with // analyze: allow-view(why))"});
      }
    }
  }
}

/// Symbol-aware port of the linter's naked-thread rule: `std::thread`
/// appearing as a type use (not `std::thread::id` etc.).
void CheckNakedThread(const Project& project, const Policy& policy,
                      std::vector<Finding>* out) {
  for (const ParsedFile& pf : project.files) {
    if (policy.IsExempt("naked-thread", pf.lex.path)) continue;
    const std::vector<Token>& ts = pf.lex.tokens;
    for (size_t i = 0; i + 2 < ts.size(); ++i) {
      if (!(ts[i].kind == Kind::kIdent && ts[i].text == "std")) continue;
      if (!(ts[i + 1].kind == Kind::kPunct && ts[i + 1].text == "::")) continue;
      if (!(ts[i + 2].kind == Kind::kIdent && ts[i + 2].text == "thread")) {
        continue;
      }
      // std::thread::id and friends are fine — only the owning type is the
      // rule's target.
      if (i + 3 < ts.size() && ts[i + 3].kind == Kind::kPunct &&
          ts[i + 3].text == "::") {
        continue;
      }
      const int line = ts[i].line;
      if (HasLintWaiver(pf.lex, "naked-thread", line)) continue;
      if (HasWaiver(pf.lex, "allow-thread", line)) continue;
      out->push_back(
          {pf.lex.path, line, "naked-thread",
           "raw std::thread; use dialite::ThreadPool or NetThread "
           "(waive with // dialite-lint: allow(naked-thread))"});
    }
  }
}

/// Symbol-aware port of the linter's raw-socket rule: global-namespace
/// socket syscalls and the socket headers.
void CheckRawSocket(const Project& project, const Policy& policy,
                    std::vector<Finding>* out) {
  static const std::unordered_set<std::string> kSocketFns = {
      "socket", "accept", "accept4", "bind",       "listen",
      "connect", "recv",  "send",    "setsockopt", "getsockopt",
      "shutdown", "getaddrinfo", "freeaddrinfo"};
  static const std::vector<std::string> kSocketHeaders = {
      "sys/socket.h", "netinet/", "arpa/inet.h", "netdb.h"};
  for (const ParsedFile& pf : project.files) {
    if (policy.IsExempt("raw-socket", pf.lex.path)) continue;
    for (const Include& inc : pf.lex.includes) {
      bool hit = false;
      for (const std::string& h : kSocketHeaders) {
        if (inc.path.compare(0, h.size(), h) == 0) hit = true;
      }
      if (!hit) continue;
      if (HasLintWaiver(pf.lex, "raw-socket", inc.line)) continue;
      if (HasWaiver(pf.lex, "allow-socket", inc.line)) continue;
      out->push_back({pf.lex.path, inc.line, "raw-socket",
                      "socket header <" + inc.path +
                          "> outside the net frame layer (waive with "
                          "// dialite-lint: allow(raw-socket))"});
    }
    const std::vector<Token>& ts = pf.lex.tokens;
    for (size_t i = 0; i + 2 < ts.size(); ++i) {
      if (!(ts[i].kind == Kind::kPunct && ts[i].text == "::")) continue;
      // Global-namespace qualifier: no identifier (or closing token) before.
      if (i > 0 && (ts[i - 1].kind == Kind::kIdent ||
                    (ts[i - 1].kind == Kind::kPunct &&
                     (ts[i - 1].text == ">" || ts[i - 1].text == ")")))) {
        continue;
      }
      if (ts[i + 1].kind != Kind::kIdent || !kSocketFns.count(ts[i + 1].text)) {
        continue;
      }
      if (!(ts[i + 2].kind == Kind::kPunct && ts[i + 2].text == "(")) continue;
      const int line = ts[i].line;
      if (HasLintWaiver(pf.lex, "raw-socket", line)) continue;
      if (HasWaiver(pf.lex, "allow-socket", line)) continue;
      out->push_back({pf.lex.path, line, "raw-socket",
                      "raw ::" + ts[i + 1].text +
                          "() outside the net frame layer (waive with "
                          "// dialite-lint: allow(raw-socket))"});
    }
  }
}

void CheckIncludeCycles(const Project& project, std::vector<Finding>* out) {
  IncludeGraph graph(project);
  std::vector<std::string> cycle = graph.FindCycle();
  if (cycle.empty()) return;
  std::string msg = "include cycle: ";
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) msg += " -> ";
    msg += cycle[i];
  }
  out->push_back({cycle.front(), 1, "include-cycle", msg});
}

}  // namespace

std::vector<Finding> RunChecks(const Project& project, const Policy& policy) {
  std::vector<Finding> out;
  CallGraph graph(project);
  const std::vector<size_t> reachable =
      graph.Reachable(policy.seeds, policy.stops);
  CheckCancellation(project, policy, graph, reachable, &out);
  CheckBlocking(project, policy, reachable, &out);
  CheckGuardedFields(project, policy, &out);
  CheckViewEscapes(project, policy, &out);
  CheckNakedThread(project, policy, &out);
  CheckRawSocket(project, policy, &out);
  CheckIncludeCycles(project, &out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  });
  return out;
}

}  // namespace analyze
}  // namespace dialite
