#include "analyze/report.h"

#include <set>
#include <utility>

namespace dialite {
namespace analyze {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal scanner for the baseline's own output format (JSON array of flat
/// string-valued objects). Not a general JSON parser; it rejects anything
/// FindingsToBaseline would not emit.
class BaselineScanner {
 public:
  explicit BaselineScanner(const std::string& text) : text_(text) {}

  bool Parse(std::vector<BaselineEntry>* out, std::string* error) {
    SkipWs();
    if (!Consume('[')) return Fail(error, "expected '['");
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      BaselineEntry entry;
      if (!ParseEntry(&entry, error)) return false;
      out->push_back(std::move(entry));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail(error, "expected ',' or ']'");
      SkipWs();
    }
  }

 private:
  bool ParseEntry(BaselineEntry* entry, std::string* error) {
    if (!Consume('{')) return Fail(error, "expected '{'");
    while (true) {
      SkipWs();
      std::string key, value;
      if (!ParseString(&key, error) ) return false;
      SkipWs();
      if (!Consume(':')) return Fail(error, "expected ':'");
      SkipWs();
      if (!ParseString(&value, error)) return false;
      if (key == "file") {
        entry->file = value;
      } else if (key == "check") {
        entry->check = value;
      } else if (key == "message") {
        entry->message = value;
      }  // unknown keys tolerated so the format can grow
      SkipWs();
      if (Consume('}')) break;
      if (!Consume(',')) return Fail(error, "expected ',' or '}'");
    }
    if (entry->file.empty() || entry->check.empty()) {
      return Fail(error, "entry missing 'file' or 'check'");
    }
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    if (!Consume('"')) return Fail(error, "expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'u':
            // Only \u00XX is ever emitted; decode the low byte.
            if (pos_ + 4 <= text_.size()) {
              int v = 0;
              for (int i = 2; i < 4; ++i) {
                char h = text_[pos_ + i];
                v = v * 16 + (h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
              }
              out->push_back(static_cast<char>(v));
              pos_ += 4;
            }
            break;
          default:
            out->push_back(e);
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail(error, "unterminated string");
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Fail(std::string* error, const char* what) {
    if (error != nullptr) {
      *error = "baseline parse error at offset " + std::to_string(pos_) +
               ": " + what;
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string Key(const std::string& file, const std::string& check,
                const std::string& message) {
  return file + "\x1f" + check + "\x1f" + message;
}

}  // namespace

std::string FindingsToSarif(const std::vector<Finding>& findings) {
  // Rule metadata: one reportingDescriptor per distinct check id.
  std::set<std::string> rule_ids;
  for (const Finding& f : findings) rule_ids.insert(f.check);

  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"dialite_analyze\",\n"
      "          \"informationUri\": "
      "\"https://github.com/northeastern-datalab/dialite\",\n"
      "          \"rules\": [\n";
  bool first = true;
  for (const std::string& id : rule_ids) {
    if (!first) out += ",\n";
    first = false;
    out += "            {\"id\": \"" + JsonEscape(id) + "\"}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",\n";
    first = false;
    out += "        {\n";
    out += "          \"ruleId\": \"" + JsonEscape(f.check) + "\",\n";
    out += "          \"level\": \"";
    out += SeverityName(f.severity);
    out += "\",\n";
    out += "          \"message\": {\"text\": \"" + JsonEscape(f.message) +
           "\"},\n";
    out +=
        "          \"locations\": [\n"
        "            {\n"
        "              \"physicalLocation\": {\n"
        "                \"artifactLocation\": {\"uri\": \"" +
        JsonEscape(f.file) +
        "\"},\n"
        "                \"region\": {\"startLine\": " +
        std::to_string(f.line > 0 ? f.line : 1) +
        "}\n"
        "              }\n"
        "            }\n"
        "          ]\n"
        "        }";
  }
  out +=
      "\n      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

std::string FindingsToBaseline(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"file\": \"" + JsonEscape(f.file) + "\", \"check\": \"" +
           JsonEscape(f.check) + "\", \"message\": \"" +
           JsonEscape(f.message) + "\"}";
  }
  out += "\n]\n";
  return out;
}

bool LoadBaseline(const std::string& text, std::vector<BaselineEntry>* out,
                  std::string* error) {
  BaselineScanner scanner(text);
  return scanner.Parse(out, error);
}

BaselineDiff DiffBaseline(const std::vector<Finding>& findings,
                          const std::vector<BaselineEntry>& baseline) {
  BaselineDiff diff;
  std::set<std::string> known;
  for (const BaselineEntry& e : baseline) {
    known.insert(Key(e.file, e.check, e.message));
  }
  std::set<std::string> fired;
  for (const Finding& f : findings) {
    const std::string key = Key(f.file, f.check, f.message);
    fired.insert(key);
    if (!known.count(key)) diff.fresh.push_back(f);
  }
  for (const BaselineEntry& e : baseline) {
    if (!fired.count(Key(e.file, e.check, e.message))) {
      diff.stale.push_back(e);
    }
  }
  return diff;
}

}  // namespace analyze
}  // namespace dialite
