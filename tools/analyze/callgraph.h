#ifndef DIALITE_TOOLS_ANALYZE_CALLGRAPH_H_
#define DIALITE_TOOLS_ANALYZE_CALLGRAPH_H_

#include <cstddef>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyze/decls.h"

namespace dialite {
namespace analyze {

/// Flattened project view: every parsed file plus a global function table.
struct Project {
  std::vector<ParsedFile> files;

  /// Global function id -> (file index, function index).
  struct FnRef {
    size_t file = 0;
    size_t fn = 0;
  };
  std::vector<FnRef> fns;

  const FunctionInfo& fn(size_t id) const {
    return files[fns[id].file].functions[fns[id].fn];
  }
  const ParsedFile& file_of(size_t id) const { return files[fns[id].file]; }

  static Project Build(std::vector<ParsedFile> parsed);
};

/// Name-based call graph: a call site `name(` links to EVERY function whose
/// simple name is `name` — a deliberate over-approximation, which is safe
/// for the reachability checks (it can only widen the audited set, never
/// hide a function from it).
class CallGraph {
 public:
  explicit CallGraph(const Project& project);

  /// Call-site simple names appearing in function `id`'s body.
  const std::set<std::string>& calls(size_t id) const { return calls_[id]; }

  /// Function ids whose simple name is `name` (null when none).
  const std::vector<size_t>* Lookup(const std::string& name) const {
    auto it = by_simple_name_.find(name);
    return it == by_simple_name_.end() ? nullptr : &it->second;
  }

  /// BFS from every function matching a seed pattern. A pattern without
  /// "::" matches simple names; with "::" it matches a suffix of the
  /// qualified name on a :: boundary. Functions matching a `stops` pattern
  /// are never entered (excluded from the result and not expanded) — the
  /// policy uses this to end the request-path at admin boundaries like
  /// LakeService::Reload.
  std::vector<size_t> Reachable(const std::vector<std::string>& seeds,
                                const std::vector<std::string>& stops) const;

  /// True if the function's simple or qualified name matches the pattern
  /// (see Reachable for the pattern grammar).
  static bool Matches(const FunctionInfo& fn, const std::string& pattern);

 private:
  const Project& project_;
  std::vector<std::set<std::string>> calls_;        // per function id
  std::unordered_map<std::string, std::vector<size_t>> by_simple_name_;
};

/// Include graph over the scanned files. Quoted includes resolve to scanned
/// files by path-suffix match; unresolved or system includes are ignored.
class IncludeGraph {
 public:
  explicit IncludeGraph(const Project& project);

  /// Returns one include cycle as a path of file paths (first == last), or
  /// an empty vector when the graph is acyclic.
  std::vector<std::string> FindCycle() const;

  /// Resolved edges: file index -> included file indices.
  const std::vector<std::vector<size_t>>& edges() const { return edges_; }

 private:
  const Project& project_;
  std::vector<std::vector<size_t>> edges_;
};

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_CALLGRAPH_H_
