#ifndef DIALITE_TOOLS_ANALYZE_CHECKS_H_
#define DIALITE_TOOLS_ANALYZE_CHECKS_H_

#include <string>
#include <vector>

#include "analyze/callgraph.h"
#include "analyze/policy.h"

namespace dialite {
namespace analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string check;    ///< "no-cancel", "blocking", "no-guard",
                        ///< "view-escape", "naked-thread", "raw-socket",
                        ///< "include-cycle"
  std::string message;
};

/// Runs every check over the project under the policy. Checks:
///  - no-cancel: a loop in a request-reachable function that calls a hot
///    helper must poll a cancel token (waive: // analyze: no-cancel(why))
///  - blocking: banned identifiers in request-reachable functions
///    (waive: // analyze: allow-blocking(why))
///  - no-guard: unannotated mutable members of lock-owning classes
///    (waive: // analyze: no-guard(why))
///  - view-escape: borrowed-view class members outside the allowlist
///    (waive: // analyze: allow-view(why))
///  - naked-thread / raw-socket: symbol-aware ports of the lint rules
///    (waive: // dialite-lint: allow(rule) or // analyze: allow-thread /
///    allow-socket)
///  - include-cycle: the quoted-include graph must be acyclic
std::vector<Finding> RunChecks(const Project& project, const Policy& policy);

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_CHECKS_H_
