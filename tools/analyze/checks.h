#ifndef DIALITE_TOOLS_ANALYZE_CHECKS_H_
#define DIALITE_TOOLS_ANALYZE_CHECKS_H_

#include <string>
#include <vector>

#include "analyze/callgraph.h"
#include "analyze/dataflow.h"
#include "analyze/policy.h"

namespace dialite {
namespace analyze {

struct Finding {
  /// kError fails the run; kWarning and kNote are reported but do not
  /// affect the exit code (the baseline gate still fails on NEW notes, so
  /// the hot-alloc inventory cannot silently grow).
  enum class Severity { kError, kWarning, kNote };

  std::string file;
  int line = 0;
  std::string check;    ///< "no-cancel", "blocking", "no-guard",
                        ///< "view-escape", "naked-thread", "raw-socket",
                        ///< "include-cycle", "lock-blocking", "hot-alloc",
                        ///< "status-drop", "view-return", "stale-waiver"
  std::string message;
  Severity severity = Severity::kError;
};

const char* SeverityName(Finding::Severity severity);

/// Runs every check over the project under the policy.
///
/// Every check is waivable at the finding line with an analyze waiver
/// comment naming its directive, e.g. the no-cancel directive with a reason
/// in parentheses. (The directive names below are spelled without the
/// waiver syntax so this very comment does not register waivers.)
///
/// Reachability checks (PR 9):
///  - no-cancel: a loop in a request-reachable function that calls a hot
///    helper must poll a cancel token
///  - blocking: banned identifiers in request-reachable functions
///    [directive: allow-blocking]
///  - no-guard: unannotated mutable members of lock-owning classes
///  - view-escape: borrowed-view class members outside the allowlist
///    [directive: allow-view]
///  - naked-thread / raw-socket: symbol-aware ports of the lint rules
///  - include-cycle: the quoted-include graph must be acyclic
///
/// Data-flow checks (statement-level CFG + interprocedural summaries):
///  - lock-blocking: a MutexLock/WriterLock critical section must not
///    transitively reach a blocking identifier (waivable at the call or
///    the acquire line)
///  - hot-alloc [note]: per-iteration heap allocation inside a
///    request-reachable cancel-polled loop — the arena-PR inventory
///  - status-drop: a Status/Result returned through a call and bound to a
///    never-consulted local, or discarded as a bare expression statement
///  - view-return: a borrowed view escaping through a return type or into
///    a deferred lambda outside the owner layers
///  - stale-waiver [warning]: an analyze waiver that no longer suppresses
///    any finding, or one naming an unknown directive
std::vector<Finding> RunChecks(const Project& project, const Policy& policy);

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_CHECKS_H_
