#ifndef DIALITE_TOOLS_ANALYZE_POLICY_H_
#define DIALITE_TOOLS_ANALYZE_POLICY_H_

#include <string>
#include <unordered_set>
#include <vector>

namespace dialite {
namespace analyze {

/// Analyzer policy, loaded from tools/analyze/policy.txt. Line grammar
/// (one directive per line, '#' comments):
///
///   seed <pattern>            request-path entry point (Name or A::B)
///   stop <pattern>            reachability boundary, never entered
///   hot <name>                scoring/merge helper: loops calling it must
///                             poll cancellation
///   cancel-poll <name>        method whose call counts as a cancel poll
///   blocking <name>           identifier banned in request-reachable code
///   mutex-type <name>         by-value member type that makes a class lock-
///                             owning for the guarded-field audit
///   guard-exempt-type <name>  member type token exempt from the audit
///   view-type <name>          borrowed-view type for the escape check
///   view-allow <substr>       path substring where view members are fine
///   exempt <check> <substr>   path substring exempt from one check
struct Policy {
  std::vector<std::string> seeds;
  std::vector<std::string> stops;
  std::unordered_set<std::string> hot;
  std::unordered_set<std::string> cancel_polls;
  std::unordered_set<std::string> blocking;
  std::unordered_set<std::string> mutex_types;
  std::unordered_set<std::string> guard_exempt_types;
  std::unordered_set<std::string> view_types;
  std::vector<std::string> view_allow;
  /// check name -> path substrings exempt from it
  std::vector<std::pair<std::string, std::string>> exempt;

  bool IsExempt(const std::string& check, const std::string& path) const;
  bool ViewAllowed(const std::string& path) const;
};

/// Parses a policy file; returns false (with *error set) on IO or syntax
/// problems.
bool LoadPolicy(const std::string& path, Policy* out, std::string* error);

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_POLICY_H_
