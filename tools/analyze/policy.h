#ifndef DIALITE_TOOLS_ANALYZE_POLICY_H_
#define DIALITE_TOOLS_ANALYZE_POLICY_H_

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace dialite {
namespace analyze {

/// Analyzer policy, loaded from tools/analyze/policy.txt. Line grammar
/// (one directive per line, '#' comments):
///
///   seed <pattern>            request-path entry point (Name or A::B)
///   stop <pattern>            reachability boundary, never entered
///   hot <name>                scoring/merge helper: loops calling it must
///                             poll cancellation
///   cancel-poll <name>        method whose call counts as a cancel poll
///   blocking <name>           identifier banned in request-reachable code;
///                             also seeds the may-block data-flow summary
///   mutex-type <name>         by-value member type that makes a class lock-
///                             owning for the guarded-field audit
///   guard-exempt-type <name>  member type token exempt from the audit
///   view-type <name>          borrowed-view type for the escape checks
///   view-allow <substr>       path substring where view members/returns are
///                             fine (the owner layers)
///   lock-guard <name>         RAII lock type opening a critical section for
///                             the lock-blocking check (MutexLock, ...)
///   status-type <name>        return type treated as a must-check status
///                             for the status-drop check (Status, Result)
///   alloc-fn <name>           call that allocates (malloc, push_back, ...)
///                             for the hot-alloc inventory + summaries
///   alloc-type <name>         type whose construction allocates (vector,
///                             string, ...) for the same
///   defer <name>              call that defers its callable argument to
///                             another thread/time (Submit); capturing a
///                             borrowed view across it is an escape
///   exempt <check> <substr>   path substring exempt from one check
///
/// Every directive takes exactly the arguments shown; a malformed line
/// (unknown directive, missing argument, or trailing junk) is a hard error
/// reported with file:line and the offending text.
struct Policy {
  std::vector<std::string> seeds;
  std::vector<std::string> stops;
  std::unordered_set<std::string> hot;
  std::unordered_set<std::string> cancel_polls;
  std::unordered_set<std::string> blocking;
  std::unordered_set<std::string> mutex_types;
  std::unordered_set<std::string> guard_exempt_types;
  std::unordered_set<std::string> view_types;
  std::vector<std::string> view_allow;
  std::unordered_set<std::string> lock_guards;
  std::unordered_set<std::string> status_types;
  std::unordered_set<std::string> alloc_fns;
  std::unordered_set<std::string> alloc_types;
  std::unordered_set<std::string> defer;
  /// check name -> path substrings exempt from it
  std::vector<std::pair<std::string, std::string>> exempt;

  bool IsExempt(const std::string& check, const std::string& path) const;
  bool ViewAllowed(const std::string& path) const;
};

/// Parses a policy file; returns false (with *error set) on IO or syntax
/// problems. Syntax errors name the file, 1-based line, and the directive
/// text so a typo'd policy can never be silently ignored.
bool LoadPolicy(const std::string& path, Policy* out, std::string* error);

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_POLICY_H_
