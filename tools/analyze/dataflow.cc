#include "analyze/dataflow.h"

namespace dialite {
namespace analyze {

DataFlow::DataFlow(const Project& project, const CallGraph& graph,
                   const Policy& policy)
    : project_(project), graph_(graph), policy_(policy) {
  const size_t n = project_.fns.size();
  cfgs_.reserve(n);
  summaries_.resize(n);

  // Pass 0: build every CFG and seed the direct facts.
  for (size_t id = 0; id < n; ++id) {
    const ParsedFile& pf = project_.file_of(id);
    const FunctionInfo& fn = project_.fn(id);
    cfgs_.push_back(BuildCfg(pf, fn, policy_));
    FnSummary& s = summaries_[id];

    for (const std::string& t : fn.ret_type) {
      if (policy_.status_types.count(t)) s.returns_status = true;
    }

    // Direct blocking: ANY body identifier in the blocking set, matching
    // the reachability check's token scan (an `ifstream` local blocks even
    // though it is a declaration, not a call).
    const std::vector<Token>& ts = pf.lex.tokens;
    const size_t end = fn.body_end < ts.size() ? fn.body_end : ts.size();
    for (size_t i = fn.body_begin; i < end && !s.may_block; ++i) {
      if (ts[i].kind == Token::Kind::kIdent &&
          policy_.blocking.count(ts[i].text)) {
        s.may_block = true;
        s.block_via = ts[i].text;
      }
    }

    for (const CfgNode& node : cfgs_[id].nodes) {
      if (node.kind == CfgNode::Kind::kAlloc && !s.may_alloc) {
        s.may_alloc = true;
        s.alloc_via = node.text;
      }
    }
  }

  // Name-level views used both during the fixpoint and by the checks.
  auto note = [&](std::unordered_map<std::string, size_t>* witness,
                  size_t id) {
    witness->emplace(project_.fn(id).simple_name, id);
  };
  for (size_t id = 0; id < n; ++id) {
    if (summaries_[id].may_block) note(&block_witness_, id);
    if (summaries_[id].may_alloc) note(&alloc_witness_, id);
    const std::string& name = project_.fn(id).simple_name;
    auto [it, inserted] =
        returns_status_by_name_.emplace(name, summaries_[id].returns_status);
    if (!inserted) it->second = it->second && summaries_[id].returns_status;
  }

  // Bounded fixpoint: propagate may-bits caller-ward until stable. The
  // lattice is two independent booleans per function, so each pass can only
  // turn bits on and the loop ends in at most depth(call graph) passes;
  // kMaxFixpointPasses bounds pathological depth.
  for (passes_ = 0; passes_ < kMaxFixpointPasses; ++passes_) {
    bool changed = false;
    for (size_t id = 0; id < n; ++id) {
      FnSummary& s = summaries_[id];
      if (s.may_block && s.may_alloc) continue;
      for (const std::string& callee : graph_.calls(id)) {
        if (!s.may_block && block_witness_.count(callee)) {
          s.may_block = true;
          s.block_via = callee;
          note(&block_witness_, id);
          changed = true;
        }
        if (!s.may_alloc && alloc_witness_.count(callee)) {
          s.may_alloc = true;
          s.alloc_via = callee;
          note(&alloc_witness_, id);
          changed = true;
        }
        if (s.may_block && s.may_alloc) break;
      }
    }
    if (!changed) break;
  }
  converged_ = passes_ < kMaxFixpointPasses;
}

bool DataFlow::NameMayBlock(const std::string& callee) const {
  return block_witness_.count(callee) != 0;
}

bool DataFlow::NameMayAlloc(const std::string& callee) const {
  return alloc_witness_.count(callee) != 0;
}

bool DataFlow::NameReturnsStatus(const std::string& callee) const {
  auto it = returns_status_by_name_.find(callee);
  return it != returns_status_by_name_.end() && it->second;
}

std::string DataFlow::Chain(const std::string& callee, bool block) const {
  const auto& witness = block ? block_witness_ : alloc_witness_;
  std::string out = callee;
  std::string cur = callee;
  for (int depth = 0; depth < 8; ++depth) {
    auto it = witness.find(cur);
    if (it == witness.end()) break;
    const FnSummary& s = summaries_[it->second];
    const std::string& via = block ? s.block_via : s.alloc_via;
    if (via.empty() || via == cur) break;
    out += " -> " + via;
    // Stop once the witness is a terminal fact, not another function.
    if (block ? policy_.blocking.count(via) != 0
              : witness.find(via) == witness.end()) {
      break;
    }
    cur = via;
  }
  return out;
}

std::string DataFlow::BlockChain(const std::string& callee) const {
  return Chain(callee, /*block=*/true);
}

std::string DataFlow::AllocChain(const std::string& callee) const {
  return Chain(callee, /*block=*/false);
}

}  // namespace analyze
}  // namespace dialite
