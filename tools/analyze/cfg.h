#ifndef DIALITE_TOOLS_ANALYZE_CFG_H_
#define DIALITE_TOOLS_ANALYZE_CFG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/decls.h"
#include "analyze/policy.h"

namespace dialite {
namespace analyze {

/// One statement-level control-flow fact inside a function body. The CFG is
/// a flattened event stream in source order: brace scopes and loop bodies
/// appear as balanced open/close pairs, so a single forward walk with a
/// scope stack reconstructs exactly which RAII lock guards are live, which
/// loop a statement sits in, and which locals are in scope at every point.
/// That is all the flow-sensitivity the serving-path checks need — the
/// repo's house style has no goto and the checks treat both branches of an
/// `if` as executed (a may-analysis, which is the conservative polarity for
/// every check built on top).
struct CfgNode {
  enum class Kind {
    kScopeOpen,    ///< '{'
    kScopeClose,   ///< '}'
    kLoopOpen,     ///< start of a for/while/do body (inside its scope)
    kLoopClose,    ///< end of that body
    kLockAcquire,  ///< RAII guard decl: text = guard type, detail = var name
    kCall,         ///< call site: text = callee simple name
    kAlloc,        ///< allocation: text = witness ("new", "push_back",
                   ///< "vector", ...), detail = "new" | "call" | "construct"
    kViewDecl,     ///< borrowed-view local: text = view type, detail = name
    kLambda,       ///< lambda expression: text = capture-list tokens joined
                   ///< by ' ' (body events follow inline)
    kReturn,       ///< return statement
  };
  Kind kind = Kind::kCall;
  std::string text;
  std::string detail;
  int line = 0;
  size_t token = 0;  ///< index into the owning file's token stream
};

/// Statement-level facts for one function body.
struct FunctionCfg {
  std::vector<CfgNode> nodes;
};

/// Builds the event stream for `fn` (which must belong to `file`). The
/// policy supplies the vocabularies: lock-guard types, allocating calls and
/// types, and borrowed-view types.
FunctionCfg BuildCfg(const ParsedFile& file, const FunctionInfo& fn,
                     const Policy& policy);

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_CFG_H_
