// dialite_analyze — semantic static analysis proving the serving-path
// invariants over src/, tools/ and bench/ (see DESIGN.md "Static analysis
// & correctness tooling" and "Data-flow engine"):
//
//   dialite_analyze src/ tools/ bench/        # human-readable findings
//   dialite_analyze --json src/               # machine-readable
//   dialite_analyze --jobs 8 src/             # parallel file scanning
//   dialite_analyze --sarif out.sarif src/    # SARIF 2.1.0 artifact
//   dialite_analyze --baseline B.json src/    # fail only on NEW findings
//   dialite_analyze --write-baseline B.json src/   # (re)record baseline
//   dialite_analyze --self-test               # fixtures must fire exactly
//
// Exit codes: 0 clean, 1 findings (errors, or any fresh non-warning
// finding under --baseline), 2 usage/IO error.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyze/checks.h"
#include "analyze/report.h"
#include "common/thread_pool.h"

namespace dialite {
namespace analyze {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool CollectFiles(const std::string& root, std::vector<std::string>* out,
                  std::string* error) {
  std::error_code ec;
  fs::file_status st = fs::status(root, ec);
  if (ec) {
    *error = root + ": " + ec.message();
    return false;
  }
  if (fs::is_regular_file(st)) {
    out->push_back(root);
    return true;
  }
  if (!fs::is_directory(st)) {
    *error = root + ": not a file or directory";
    return false;
  }
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      *error = root + ": " + ec.message();
      return false;
    }
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    // Fixture trees contain deliberately-bad code; scanning them as part of
    // the real tree would re-report every planted finding.
    if (it->is_directory() &&
        (name == ".git" || name.rfind("build", 0) == 0 ||
         name == "fixtures" || name == "lint_fixtures")) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && HasSourceExtension(p)) {
      out->push_back(p.generic_string());
    }
  }
  std::sort(out->begin(), out->end());
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

/// Parses every (display name, read path) pair, using `jobs` worker
/// threads (0 = hardware concurrency, 1 = inline). Results land in input
/// order regardless of completion order, so output is deterministic under
/// any --jobs value.
bool ParseAll(const std::vector<std::pair<std::string, std::string>>& names,
              int jobs, std::vector<ParsedFile>* parsed, std::string* error) {
  parsed->resize(names.size());
  if (jobs == 1 || names.size() <= 1) {
    for (size_t i = 0; i < names.size(); ++i) {
      std::string source;
      if (!ReadFile(names[i].second, &source)) {
        *error = "cannot read " + names[i].second;
        return false;
      }
      (*parsed)[i] = Parse(Lex(names[i].first, source));
    }
    return true;
  }
  ThreadPool pool(jobs < 0 ? 0 : static_cast<size_t>(jobs));
  std::atomic<size_t> failed{names.size()};  // sentinel: no failure
  pool.ParallelFor(names.size(), [&](size_t i) {
    std::string source;
    if (!ReadFile(names[i].second, &source)) {
      size_t expect = names.size();
      failed.compare_exchange_strong(expect, i);
      return;
    }
    (*parsed)[i] = Parse(Lex(names[i].first, source));
  });
  if (failed.load() != names.size()) {
    *error = "cannot read " + names[failed.load()].second;
    return false;
  }
  return true;
}

/// Finds tools/analyze/policy.txt by walking up from `start` — lets
/// `dialite_analyze src/` work from the repo root or any subdirectory.
std::string FindDefaultPolicy(const std::string& start) {
  std::error_code ec;
  fs::path dir = fs::absolute(start, ec);
  if (ec) return "";
  if (!fs::is_directory(dir, ec)) dir = dir.parent_path();
  for (; !dir.empty(); dir = dir.parent_path()) {
    fs::path cand = dir / "tools" / "analyze" / "policy.txt";
    if (fs::exists(cand, ec)) return cand.generic_string();
    if (dir == dir.root_path()) break;
  }
  return "";
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default: *out += c;
    }
  }
}

void PrintFindings(const std::vector<Finding>& findings, size_t files_scanned,
                   double seconds, bool json) {
  if (json) {
    std::string out = "{\"findings\":[";
    for (size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      if (i > 0) out += ",";
      out += "{\"file\":\"";
      AppendJsonEscaped(&out, f.file);
      out += "\",\"line\":" + std::to_string(f.line) + ",\"check\":\"";
      AppendJsonEscaped(&out, f.check);
      out += "\",\"severity\":\"";
      out += SeverityName(f.severity);
      out += "\",\"message\":\"";
      AppendJsonEscaped(&out, f.message);
      out += "\"}";
    }
    out += "],\"files_scanned\":" + std::to_string(files_scanned) +
           ",\"seconds\":" + std::to_string(seconds) + "}";
    std::printf("%s\n", out.c_str());
    return;
  }
  for (const Finding& f : findings) {
    std::printf("%s:%d: %s: [%s] %s\n", f.file.c_str(), f.line,
                SeverityName(f.severity), f.check.c_str(), f.message.c_str());
  }
  std::printf("dialite_analyze: %zu finding%s in %zu files (%.2fs)\n",
              findings.size(), findings.size() == 1 ? "" : "s", files_scanned,
              seconds);
}

struct Options {
  std::vector<std::string> roots;
  std::string policy_path;
  std::string fixtures_dir;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  int jobs = 1;
  bool json = false;
  bool self_test = false;
};

int Analyze(const Options& opt) {
  const auto start = std::chrono::steady_clock::now();
  Policy policy;
  std::string error;
  if (!LoadPolicy(opt.policy_path, &policy, &error)) {
    std::fprintf(stderr, "dialite_analyze: %s\n", error.c_str());
    return 2;
  }
  std::vector<std::string> paths;
  for (const std::string& root : opt.roots) {
    if (!CollectFiles(root, &paths, &error)) {
      std::fprintf(stderr, "dialite_analyze: %s\n", error.c_str());
      return 2;
    }
  }
  // Canonicalize to repo-relative display paths (the policy file sits at
  // <repo>/tools/analyze/policy.txt) so findings, policy exemptions, and
  // baseline keys are identical no matter where the tool is invoked from.
  // Reads still use the as-collected path; only the recorded name changes.
  std::vector<std::pair<std::string, std::string>> names;  // display, read
  {
    std::error_code ec;
    const fs::path repo_root =
        fs::absolute(opt.policy_path, ec).parent_path().parent_path()
            .parent_path();
    for (const std::string& p : paths) {
      std::string display = p;
      if (!ec) {
        std::error_code rec;
        const fs::path rel = fs::proximate(p, repo_root, rec);
        if (!rec && !rel.empty() && *rel.begin() != "..") {
          display = rel.generic_string();
        }
      }
      names.emplace_back(std::move(display), p);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
  }
  std::vector<ParsedFile> parsed;
  if (!ParseAll(names, opt.jobs, &parsed, &error)) {
    std::fprintf(stderr, "dialite_analyze: %s\n", error.c_str());
    return 2;
  }
  Project project = Project::Build(std::move(parsed));
  std::vector<Finding> findings = RunChecks(project, policy);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  PrintFindings(findings, names.size(), seconds, opt.json);

  if (!opt.sarif_path.empty() &&
      !WriteFile(opt.sarif_path, FindingsToSarif(findings))) {
    std::fprintf(stderr, "dialite_analyze: cannot write %s\n",
                 opt.sarif_path.c_str());
    return 2;
  }
  if (!opt.write_baseline_path.empty()) {
    if (!WriteFile(opt.write_baseline_path, FindingsToBaseline(findings))) {
      std::fprintf(stderr, "dialite_analyze: cannot write %s\n",
                   opt.write_baseline_path.c_str());
      return 2;
    }
    std::printf("dialite_analyze: wrote baseline with %zu entries to %s\n",
                findings.size(), opt.write_baseline_path.c_str());
  }

  if (!opt.baseline_path.empty()) {
    std::string text;
    if (!ReadFile(opt.baseline_path, &text)) {
      std::fprintf(stderr, "dialite_analyze: cannot read baseline %s\n",
                   opt.baseline_path.c_str());
      return 2;
    }
    std::vector<BaselineEntry> baseline;
    if (!LoadBaseline(text, &baseline, &error)) {
      std::fprintf(stderr, "dialite_analyze: %s: %s\n",
                   opt.baseline_path.c_str(), error.c_str());
      return 2;
    }
    BaselineDiff diff = DiffBaseline(findings, baseline);
    for (const BaselineEntry& e : diff.stale) {
      std::printf(
          "dialite_analyze: stale baseline entry (no longer fires): "
          "%s [%s] — re-record with --write-baseline\n",
          e.file.c_str(), e.check.c_str());
    }
    size_t gating = 0;
    for (const Finding& f : diff.fresh) {
      if (f.severity != Finding::Severity::kWarning) ++gating;
    }
    std::printf(
        "dialite_analyze: baseline diff: %zu fresh (%zu gating), %zu stale, "
        "%zu total findings\n",
        diff.fresh.size(), gating, diff.stale.size(), findings.size());
    return gating == 0 ? 0 : 1;
  }

  for (const Finding& f : findings) {
    if (f.severity == Finding::Severity::kError) return 1;
  }
  return 0;
}

/// --self-test: every bad fixture must fire exactly its own check, every
/// good fixture must be silent, and the malformed-policy fixture must be
/// rejected with a file:line diagnostic.
int SelfTest(const std::string& fixtures_dir, bool json) {
  static const std::map<std::string, std::string> kExpected = {
      {"bad_cancel.cc", "no-cancel"},
      {"bad_blocking.cc", "blocking"},
      {"bad_guarded.cc", "no-guard"},
      {"bad_view.cc", "view-escape"},
      {"bad_naked_thread.cc", "naked-thread"},
      {"bad_raw_socket.cc", "raw-socket"},
      {"bad_lock_blocking.cc", "lock-blocking"},
      {"bad_hot_alloc.cc", "hot-alloc"},
      {"bad_status_drop.cc", "status-drop"},
      {"bad_view_return.cc", "view-return"},
  };
  const std::string policy_path =
      (fs::path(fixtures_dir) / "policy.txt").generic_string();
  Policy policy;
  std::string error;
  if (!LoadPolicy(policy_path, &policy, &error)) {
    std::fprintf(stderr, "dialite_analyze --self-test: %s\n", error.c_str());
    return 2;
  }

  int failures = 0;
  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "SELF-TEST FAIL: %s\n", msg.c_str());
    ++failures;
  };

  // Malformed-policy fixture: loading must fail and the diagnostic must
  // carry file:line plus the offending directive text.
  {
    const std::string bad_policy =
        (fs::path(fixtures_dir) / "bad_policy.txt").generic_string();
    Policy ignored;
    std::string perr;
    if (LoadPolicy(bad_policy, &ignored, &perr)) {
      fail("bad_policy.txt: malformed policy loaded without error");
    } else if (perr.find("bad_policy.txt:") == std::string::npos) {
      fail("bad_policy.txt: diagnostic lacks file:line — got '" + perr + "'");
    }
  }

  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::directory_iterator it(fixtures_dir, ec), end; it != end;
       it.increment(ec)) {
    if (!ec && it->is_regular_file() && HasSourceExtension(it->path())) {
      paths.push_back(it->path().generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<ParsedFile> parsed;
  for (const std::string& path : paths) {
    std::string source;
    if (!ReadFile(path, &source)) {
      std::fprintf(stderr, "dialite_analyze --self-test: cannot read %s\n",
                   path.c_str());
      return 2;
    }
    parsed.push_back(Parse(Lex(path, source)));
  }
  Project project = Project::Build(std::move(parsed));
  std::vector<Finding> findings = RunChecks(project, policy);

  // Findings per fixture basename.
  std::map<std::string, std::vector<const Finding*>> by_file;
  for (const Finding& f : findings) {
    by_file[fs::path(f.file).filename().string()].push_back(&f);
  }
  for (const auto& [file, check] : kExpected) {
    bool fixture_present = false;
    for (const std::string& p : paths) {
      if (fs::path(p).filename() == file) fixture_present = true;
    }
    if (!fixture_present) {
      fail("missing fixture " + file);
      continue;
    }
    const auto it = by_file.find(file);
    if (it == by_file.end()) {
      fail(file + ": expected a '" + check + "' finding, got none");
      continue;
    }
    bool fired = false;
    for (const Finding* f : it->second) {
      if (f->check == check) {
        fired = true;
      } else {
        fail(file + ": unexpected '" + f->check + "' finding at line " +
             std::to_string(f->line));
      }
    }
    if (!fired) fail(file + ": expected a '" + check + "' finding");
  }
  for (const auto& [file, fs_list] : by_file) {
    if (file.rfind("good_", 0) == 0) {
      for (const Finding* f : fs_list) {
        fail(file + ": good fixture tripped '" + f->check + "' at line " +
             std::to_string(f->line));
      }
    }
  }
  if (json) {
    std::printf("{\"self_test_failures\":%d}\n", failures);
  } else if (failures == 0) {
    std::printf("dialite_analyze --self-test: all %zu fixtures behave\n",
                kExpected.size() * 2);
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto need = [&](const char* flag) -> const char* {
      const char* v = next();
      if (v == nullptr) std::fprintf(stderr, "%s needs an argument\n", flag);
      return v;
    };
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--self-test") {
      opt.self_test = true;
    } else if (arg == "--policy") {
      const char* v = need("--policy");
      if (v == nullptr) return 2;
      opt.policy_path = v;
    } else if (arg == "--fixtures") {
      const char* v = need("--fixtures");
      if (v == nullptr) return 2;
      opt.fixtures_dir = v;
    } else if (arg == "--sarif") {
      const char* v = need("--sarif");
      if (v == nullptr) return 2;
      opt.sarif_path = v;
    } else if (arg == "--baseline") {
      const char* v = need("--baseline");
      if (v == nullptr) return 2;
      opt.baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = need("--write-baseline");
      if (v == nullptr) return 2;
      opt.write_baseline_path = v;
    } else if (arg == "--jobs") {
      const char* v = need("--jobs");
      if (v == nullptr) return 2;
      opt.jobs = std::atoi(v);
      if (opt.jobs < 0) {
        std::fprintf(stderr, "--jobs needs a non-negative count\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(
          stderr,
          "usage: dialite_analyze [--policy FILE] [--json] [--jobs N]\n"
          "                       [--sarif FILE] [--baseline FILE]\n"
          "                       [--write-baseline FILE] PATH...\n"
          "       dialite_analyze --self-test [--fixtures DIR]\n");
      return 2;
    } else {
      opt.roots.push_back(arg);
    }
  }
  if (opt.self_test) {
    if (opt.fixtures_dir.empty()) {
      // Default: fixtures/ next to the policy file found from cwd.
      const std::string policy = FindDefaultPolicy(".");
      if (!policy.empty()) {
        opt.fixtures_dir =
            (fs::path(policy).parent_path() / "fixtures").generic_string();
      }
    }
    if (opt.fixtures_dir.empty()) {
      std::fprintf(stderr,
                   "dialite_analyze --self-test: cannot locate fixtures; "
                   "pass --fixtures DIR\n");
      return 2;
    }
    return SelfTest(opt.fixtures_dir, opt.json);
  }
  if (opt.roots.empty()) {
    std::fprintf(stderr, "dialite_analyze: no input paths\n");
    return 2;
  }
  if (opt.policy_path.empty()) {
    opt.policy_path = FindDefaultPolicy(opt.roots.front());
  }
  if (opt.policy_path.empty()) {
    std::fprintf(stderr,
                 "dialite_analyze: cannot find tools/analyze/policy.txt from "
                 "'%s'; pass --policy FILE\n",
                 opt.roots.front().c_str());
    return 2;
  }
  return Analyze(opt);
}

}  // namespace
}  // namespace analyze
}  // namespace dialite

int main(int argc, char** argv) { return dialite::analyze::Main(argc, argv); }
