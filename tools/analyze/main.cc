// dialite_analyze — semantic static analysis proving the serving-path
// invariants over src/ (see DESIGN.md "Static analysis & correctness
// tooling"):
//
//   dialite_analyze src/                      # human-readable findings
//   dialite_analyze --json src/               # machine-readable
//   dialite_analyze --self-test               # fixtures must fire exactly
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/checks.h"

namespace dialite {
namespace analyze {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool CollectFiles(const std::string& root, std::vector<std::string>* out,
                  std::string* error) {
  std::error_code ec;
  fs::file_status st = fs::status(root, ec);
  if (ec) {
    *error = root + ": " + ec.message();
    return false;
  }
  if (fs::is_regular_file(st)) {
    out->push_back(root);
    return true;
  }
  if (!fs::is_directory(st)) {
    *error = root + ": not a file or directory";
    return false;
  }
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      *error = root + ": " + ec.message();
      return false;
    }
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory() && (name == ".git" || name.rfind("build", 0) == 0)) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && HasSourceExtension(p)) {
      out->push_back(p.generic_string());
    }
  }
  std::sort(out->begin(), out->end());
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Finds tools/analyze/policy.txt by walking up from `start` — lets
/// `dialite_analyze src/` work from the repo root or any subdirectory.
std::string FindDefaultPolicy(const std::string& start) {
  std::error_code ec;
  fs::path dir = fs::absolute(start, ec);
  if (ec) return "";
  if (!fs::is_directory(dir, ec)) dir = dir.parent_path();
  for (; !dir.empty(); dir = dir.parent_path()) {
    fs::path cand = dir / "tools" / "analyze" / "policy.txt";
    if (fs::exists(cand, ec)) return cand.generic_string();
    if (dir == dir.root_path()) break;
  }
  return "";
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default: *out += c;
    }
  }
}

void PrintFindings(const std::vector<Finding>& findings, size_t files_scanned,
                   double seconds, bool json) {
  if (json) {
    std::string out = "{\"findings\":[";
    for (size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      if (i > 0) out += ",";
      out += "{\"file\":\"";
      AppendJsonEscaped(&out, f.file);
      out += "\",\"line\":" + std::to_string(f.line) + ",\"check\":\"";
      AppendJsonEscaped(&out, f.check);
      out += "\",\"message\":\"";
      AppendJsonEscaped(&out, f.message);
      out += "\"}";
    }
    out += "],\"files_scanned\":" + std::to_string(files_scanned) +
           ",\"seconds\":" + std::to_string(seconds) + "}";
    std::printf("%s\n", out.c_str());
    return;
  }
  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.check.c_str(),
                f.message.c_str());
  }
  std::printf("dialite_analyze: %zu finding%s in %zu files (%.2fs)\n",
              findings.size(), findings.size() == 1 ? "" : "s", files_scanned,
              seconds);
}

int Analyze(const std::vector<std::string>& roots, const std::string& policy_path,
            bool json) {
  const auto start = std::chrono::steady_clock::now();
  Policy policy;
  std::string error;
  if (!LoadPolicy(policy_path, &policy, &error)) {
    std::fprintf(stderr, "dialite_analyze: %s\n", error.c_str());
    return 2;
  }
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    if (!CollectFiles(root, &paths, &error)) {
      std::fprintf(stderr, "dialite_analyze: %s\n", error.c_str());
      return 2;
    }
  }
  std::vector<ParsedFile> parsed;
  parsed.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string source;
    if (!ReadFile(path, &source)) {
      std::fprintf(stderr, "dialite_analyze: cannot read %s\n", path.c_str());
      return 2;
    }
    parsed.push_back(Parse(Lex(path, source)));
  }
  Project project = Project::Build(std::move(parsed));
  std::vector<Finding> findings = RunChecks(project, policy);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  PrintFindings(findings, paths.size(), seconds, json);
  return findings.empty() ? 0 : 1;
}

/// --self-test: every bad fixture must fire exactly its own check, every
/// good fixture must be silent.
int SelfTest(const std::string& fixtures_dir, bool json) {
  static const std::map<std::string, std::string> kExpected = {
      {"bad_cancel.cc", "no-cancel"},
      {"bad_blocking.cc", "blocking"},
      {"bad_guarded.cc", "no-guard"},
      {"bad_view.cc", "view-escape"},
      {"bad_naked_thread.cc", "naked-thread"},
      {"bad_raw_socket.cc", "raw-socket"},
  };
  const std::string policy_path =
      (fs::path(fixtures_dir) / "policy.txt").generic_string();
  Policy policy;
  std::string error;
  if (!LoadPolicy(policy_path, &policy, &error)) {
    std::fprintf(stderr, "dialite_analyze --self-test: %s\n", error.c_str());
    return 2;
  }
  std::vector<std::string> paths;
  if (!CollectFiles(fixtures_dir, &paths, &error)) {
    std::fprintf(stderr, "dialite_analyze --self-test: %s\n", error.c_str());
    return 2;
  }
  std::vector<ParsedFile> parsed;
  for (const std::string& path : paths) {
    std::string source;
    if (!ReadFile(path, &source)) {
      std::fprintf(stderr, "dialite_analyze --self-test: cannot read %s\n",
                   path.c_str());
      return 2;
    }
    parsed.push_back(Parse(Lex(path, source)));
  }
  Project project = Project::Build(std::move(parsed));
  std::vector<Finding> findings = RunChecks(project, policy);

  int failures = 0;
  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "SELF-TEST FAIL: %s\n", msg.c_str());
    ++failures;
  };
  // Findings per fixture basename.
  std::map<std::string, std::vector<const Finding*>> by_file;
  for (const Finding& f : findings) {
    by_file[fs::path(f.file).filename().string()].push_back(&f);
  }
  for (const auto& [file, check] : kExpected) {
    bool fixture_present = false;
    for (const std::string& p : paths) {
      if (fs::path(p).filename() == file) fixture_present = true;
    }
    if (!fixture_present) {
      fail("missing fixture " + file);
      continue;
    }
    const auto it = by_file.find(file);
    if (it == by_file.end()) {
      fail(file + ": expected a '" + check + "' finding, got none");
      continue;
    }
    bool fired = false;
    for (const Finding* f : it->second) {
      if (f->check == check) {
        fired = true;
      } else {
        fail(file + ": unexpected '" + f->check + "' finding at line " +
             std::to_string(f->line));
      }
    }
    if (!fired) fail(file + ": expected a '" + check + "' finding");
  }
  for (const auto& [file, fs_list] : by_file) {
    if (file.rfind("good_", 0) == 0) {
      for (const Finding* f : fs_list) {
        fail(file + ": good fixture tripped '" + f->check + "' at line " +
             std::to_string(f->line));
      }
    }
  }
  if (json) {
    std::printf("{\"self_test_failures\":%d}\n", failures);
  } else if (failures == 0) {
    std::printf("dialite_analyze --self-test: all %zu fixtures behave\n",
                kExpected.size() * 2);
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string policy_path;
  std::string fixtures_dir;
  bool json = false;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--policy needs a path\n");
        return 2;
      }
      policy_path = v;
    } else if (arg == "--fixtures") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--fixtures needs a path\n");
        return 2;
      }
      fixtures_dir = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: dialite_analyze [--policy FILE] [--json] PATH...\n"
                   "       dialite_analyze --self-test [--fixtures DIR]\n");
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (self_test) {
    if (fixtures_dir.empty()) {
      // Default: fixtures/ next to the policy file found from cwd.
      const std::string policy = FindDefaultPolicy(".");
      if (!policy.empty()) {
        fixtures_dir =
            (fs::path(policy).parent_path() / "fixtures").generic_string();
      }
    }
    if (fixtures_dir.empty()) {
      std::fprintf(stderr,
                   "dialite_analyze --self-test: cannot locate fixtures; "
                   "pass --fixtures DIR\n");
      return 2;
    }
    return SelfTest(fixtures_dir, json);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "dialite_analyze: no input paths\n");
    return 2;
  }
  if (policy_path.empty()) policy_path = FindDefaultPolicy(roots.front());
  if (policy_path.empty()) {
    std::fprintf(stderr,
                 "dialite_analyze: cannot find tools/analyze/policy.txt from "
                 "'%s'; pass --policy FILE\n",
                 roots.front().c_str());
    return 2;
  }
  return Analyze(roots, policy_path, json);
}

}  // namespace
}  // namespace analyze
}  // namespace dialite

int main(int argc, char** argv) { return dialite::analyze::Main(argc, argv); }
