#ifndef DIALITE_TOOLS_ANALYZE_DATAFLOW_H_
#define DIALITE_TOOLS_ANALYZE_DATAFLOW_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "analyze/callgraph.h"
#include "analyze/cfg.h"

namespace dialite {
namespace analyze {

/// Interprocedural abstract state for one function — the per-function
/// summary the fixpoint propagates across the call graph. Each bit is a
/// may-property: true means "some path through this function (or one of
/// its transitive callees) does this", which is the conservative polarity
/// for all the serving checks.
struct FnSummary {
  /// Transitively reaches a `blocking` policy identifier (sleep_for, file
  /// IO, TcpConnect, ...).
  bool may_block = false;
  /// Transitively performs a heap allocation (`new`, an alloc-fn call, or
  /// an alloc-type construction).
  bool may_alloc = false;
  /// The declared return type is a status type (Status, Result<...>).
  bool returns_status = false;
  /// Witness for may_block: the blocking identifier itself when direct, or
  /// the callee simple name that made this function blocking.
  std::string block_via;
  /// Same for may_alloc.
  std::string alloc_via;
};

/// The data-flow engine: builds statement-level CFGs for every function,
/// seeds direct facts from them, then runs a bounded interprocedural
/// fixpoint over the name-based call graph. Summaries are monotone (bits
/// only turn on), so the fixpoint terminates; the pass bound is a safety
/// net against adversarial call-graph depth, and `converged()` reports
/// whether it was reached (an unconverged run may under-approximate, which
/// the driver surfaces as a warning finding).
class DataFlow {
 public:
  static constexpr int kMaxFixpointPasses = 32;

  DataFlow(const Project& project, const CallGraph& graph,
           const Policy& policy);

  const FnSummary& summary(size_t id) const { return summaries_[id]; }
  const FunctionCfg& cfg(size_t id) const { return cfgs_[id]; }

  /// True if ANY function with this simple name may block / allocate —
  /// the same deliberate over-approximation the call graph uses.
  bool NameMayBlock(const std::string& callee) const;
  bool NameMayAlloc(const std::string& callee) const;

  /// True if at least one function with this simple name is defined in the
  /// scanned set and EVERY such definition returns a status type. The
  /// all-definitions rule keeps name collisions from flagging unrelated
  /// void helpers.
  bool NameReturnsStatus(const std::string& callee) const;

  /// Human-readable witness chain, e.g. "Merge -> Grow -> push_back" /
  /// "Save -> ofstream". Empty when the name has no such summary.
  std::string BlockChain(const std::string& callee) const;
  std::string AllocChain(const std::string& callee) const;

  bool converged() const { return converged_; }
  int passes() const { return passes_; }

 private:
  std::string Chain(const std::string& callee, bool block) const;

  const Project& project_;
  const CallGraph& graph_;
  const Policy& policy_;
  std::vector<FunctionCfg> cfgs_;
  std::vector<FnSummary> summaries_;
  /// simple name -> a function id with may_block/may_alloc set (witness
  /// owner), for chain reconstruction.
  std::unordered_map<std::string, size_t> block_witness_;
  std::unordered_map<std::string, size_t> alloc_witness_;
  /// simple name -> {all definitions return status} (name absent: none do).
  std::unordered_map<std::string, bool> returns_status_by_name_;
  bool converged_ = true;
  int passes_ = 0;
};

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_DATAFLOW_H_
