#ifndef DIALITE_TOOLS_ANALYZE_REPORT_H_
#define DIALITE_TOOLS_ANALYZE_REPORT_H_

#include <string>
#include <vector>

#include "analyze/checks.h"

namespace dialite {
namespace analyze {

/// Serializes findings as a SARIF 2.1.0 log (one run, driver
/// "dialite_analyze") suitable for upload as a CI artifact or to code
/// scanning. Severities map kError->"error", kWarning->"warning",
/// kNote->"note".
std::string FindingsToSarif(const std::vector<Finding>& findings);

/// Serializes findings as the baseline format: one JSON object per entry
/// with file/check/message (no line — lines drift across refactors; the
/// triple identifies a finding stably enough for a diff gate).
std::string FindingsToBaseline(const std::vector<Finding>& findings);

struct BaselineEntry {
  std::string file;
  std::string check;
  std::string message;
};

/// Parses a baseline previously written by FindingsToBaseline. Returns
/// false (with *error set) on malformed input.
bool LoadBaseline(const std::string& text, std::vector<BaselineEntry>* out,
                  std::string* error);

struct BaselineDiff {
  /// Findings not present in the baseline — these fail the gate.
  std::vector<Finding> fresh;
  /// Baseline entries that no longer fire — stale, reported as warnings so
  /// the baseline gets re-recorded rather than rotting.
  std::vector<BaselineEntry> stale;
};

/// Splits `findings` against `baseline` on the (file, check, message) key.
BaselineDiff DiffBaseline(const std::vector<Finding>& findings,
                          const std::vector<BaselineEntry>& baseline);

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_REPORT_H_
