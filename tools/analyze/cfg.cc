#include "analyze/cfg.h"

#include <unordered_map>
#include <unordered_set>

namespace dialite {
namespace analyze {

namespace {

using Kind = Token::Kind;

bool IsIdent(const Token& t) { return t.kind == Kind::kIdent; }
bool Is(const Token& t, const char* text) { return t.text == text; }

const std::unordered_set<std::string>& NonCallKeywords() {
  static const std::unordered_set<std::string> kw = {
      "if",    "for",      "while",  "switch",      "catch",  "return",
      "sizeof", "alignof", "decltype", "new",       "delete", "throw",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "static_assert", "assert", "defined", "alignas", "noexcept",
      "co_await", "co_return", "co_yield"};
  return kw;
}

/// Skips `<...>` template arguments starting at ts[i] == '<'. Returns the
/// index one past the matching '>', or `i` unchanged when the brackets do
/// not balance before a ';' (then '<' was a comparison, not a template).
size_t SkipAngles(const std::vector<Token>& ts, size_t i, size_t end) {
  int depth = 0;
  for (size_t j = i; j < end; ++j) {
    if (ts[j].kind != Kind::kPunct) continue;
    if (ts[j].text == "<") ++depth;
    if (ts[j].text == ">" && --depth == 0) return j + 1;
    if (ts[j].text == ";") break;
  }
  return i;
}

}  // namespace

FunctionCfg BuildCfg(const ParsedFile& file, const FunctionInfo& fn,
                     const Policy& policy) {
  FunctionCfg cfg;
  const std::vector<Token>& ts = file.lex.tokens;

  // Loop body extents become balanced kLoopOpen/kLoopClose events keyed by
  // token index (closes before opens at equal indices never happens: a
  // loop's body is non-empty or the open==close pair degenerates and both
  // events are emitted back to back, which the checks tolerate).
  std::unordered_map<size_t, std::vector<const Loop*>> opens, closes;
  for (const Loop& loop : fn.loops) {
    opens[loop.body_begin].push_back(&loop);
    closes[loop.body_end].push_back(&loop);
  }

  auto push = [&](CfgNode::Kind kind, std::string text, std::string detail,
                  int line, size_t token) {
    cfg.nodes.push_back({kind, std::move(text), std::move(detail), line,
                         token});
  };

  const size_t end = fn.body_end < ts.size() ? fn.body_end : ts.size();
  for (size_t i = fn.body_begin; i < end; ++i) {
    if (auto it = closes.find(i); it != closes.end()) {
      for (const Loop* loop : it->second) {
        push(CfgNode::Kind::kLoopClose, "", "", loop->line, i);
      }
    }
    if (auto it = opens.find(i); it != opens.end()) {
      for (const Loop* loop : it->second) {
        push(CfgNode::Kind::kLoopOpen, "", "", loop->line, i);
      }
    }
    const Token& t = ts[i];

    if (t.kind == Kind::kPunct) {
      if (t.text == "{") {
        push(CfgNode::Kind::kScopeOpen, "", "", t.line, i);
      } else if (t.text == "}") {
        push(CfgNode::Kind::kScopeClose, "", "", t.line, i);
      } else if (t.text == "[") {
        // Lambda introducer vs subscript vs attribute. A subscript follows
        // a value (identifier or a closing token); an attribute is `[[`.
        const bool subscript =
            i > fn.body_begin &&
            (IsIdent(ts[i - 1]) ||
             (ts[i - 1].kind == Kind::kPunct &&
              (ts[i - 1].text == ")" || ts[i - 1].text == "]")));
        if (!subscript && i + 1 < end && Is(ts[i + 1], "[")) {
          i = SkipBalanced(ts, i, '[', ']') - 1;  // [[attribute]]
        } else if (!subscript) {
          const size_t close = SkipBalanced(ts, i, '[', ']');
          std::string captures;
          for (size_t j = i + 1; j + 1 < close; ++j) {
            if (!captures.empty()) captures += ' ';
            captures += ts[j].text;
          }
          push(CfgNode::Kind::kLambda, std::move(captures), "", t.line, i);
          i = close - 1;  // body events continue inline
        }
      }
      continue;
    }

    if (!IsIdent(t)) continue;

    if (t.text == "return") {
      push(CfgNode::Kind::kReturn, "", "", t.line, i);
      continue;
    }
    if (t.text == "new") {
      push(CfgNode::Kind::kAlloc, "new", "new", t.line, i);
      continue;
    }

    // A blocking identifier used without parens (an `ifstream in(path)`
    // local, a type mention) still blocks; surface it as a call event so
    // the lock-blocking walk sees every use, not just call syntax.
    if (policy.blocking.count(t.text) &&
        !(i + 1 < end && Is(ts[i + 1], "("))) {
      push(CfgNode::Kind::kCall, t.text, "", t.line, i);
      continue;
    }

    // RAII lock guard: `MutexLock lock(mu)` / `WriterLock l{mu}`.
    if (policy.lock_guards.count(t.text) && i + 2 < end &&
        IsIdent(ts[i + 1]) &&
        (Is(ts[i + 2], "(") || Is(ts[i + 2], "{"))) {
      push(CfgNode::Kind::kLockAcquire, t.text, ts[i + 1].text, t.line, i);
      i += 1;  // skip the guard variable so `name(` is not a call
      continue;
    }

    // Borrowed-view local declaration: `ColumnView v`, `span<const T> s`,
    // `const ColumnView& v`. const/*/& between type and name are skipped.
    if (policy.view_types.count(t.text)) {
      size_t j = i + 1;
      if (j < end && Is(ts[j], "<")) j = SkipAngles(ts, j, end);
      while (j < end && ts[j].kind == Kind::kPunct &&
             (ts[j].text == "&" || ts[j].text == "*")) {
        ++j;
      }
      if (j < end && IsIdent(ts[j]) && ts[j].text != "const" &&
          !(j + 1 < end && Is(ts[j + 1], "("))) {
        push(CfgNode::Kind::kViewDecl, t.text, ts[j].text, t.line, i);
        i = j;
        continue;
      }
    }

    // Allocating type construction: `std::vector<T> tmp`, `string(n, c)`.
    if (policy.alloc_types.count(t.text) && i + 1 < end &&
        (Is(ts[i + 1], "<") || Is(ts[i + 1], "(") || Is(ts[i + 1], "{") ||
         IsIdent(ts[i + 1]))) {
      push(CfgNode::Kind::kAlloc, t.text, "construct", t.line, i);
      // fall through: `vector` followed by ident is also a decl, but the
      // call scan below needs the next tokens untouched.
    }

    // Call site: identifier immediately before '('.
    if (i + 1 < end && Is(ts[i + 1], "(") &&
        !NonCallKeywords().count(t.text)) {
      push(CfgNode::Kind::kCall, t.text, "", t.line, i);
      if (policy.alloc_fns.count(t.text)) {
        push(CfgNode::Kind::kAlloc, t.text, "call", t.line, i);
      }
    }
  }
  return cfg;
}

}  // namespace analyze
}  // namespace dialite
