#include "analyze/decls.h"

#include <algorithm>
#include <unordered_set>

namespace dialite {
namespace analyze {

namespace {

using Kind = Token::Kind;

bool IsIdent(const Token& t) { return t.kind == Kind::kIdent; }
bool Is(const Token& t, const char* text) { return t.text == text; }

const std::unordered_set<std::string>& ControlKeywords() {
  static const std::unordered_set<std::string> kw = {
      "if",     "for",    "while",   "switch", "catch",    "return",
      "sizeof", "alignof", "decltype", "new",  "delete",   "throw",
      "static_assert", "assert", "co_await", "co_return", "co_yield"};
  return kw;
}

/// ALL_CAPS identifier with an underscore: treated as an annotation macro
/// when followed by parens (DIALITE_GUARDED_BY, ABSL_EXCLUSIVE_LOCKS...).
bool LooksLikeAnnotationMacro(const std::string& s) {
  if (s.find('_') == std::string::npos) return false;
  for (char c : s) {
    if (!(c == '_' || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))) {
      return false;
    }
  }
  return true;
}

/// Records every for/while/do loop body inside [begin, end).
void FindLoops(const std::vector<Token>& ts, size_t begin, size_t end,
               std::vector<Loop>* loops) {
  for (size_t i = begin; i < end; ++i) {
    const Token& t = ts[i];
    if (!IsIdent(t)) continue;
    size_t body = ts.size();
    int line = t.line;
    if ((t.text == "for" || t.text == "while") && i + 1 < end &&
        Is(ts[i + 1], "(")) {
      body = SkipBalanced(ts, i + 1, '(', ')');
    } else if (t.text == "do") {
      body = i + 1;
    } else {
      continue;
    }
    if (body >= end) continue;
    size_t body_end;
    if (Is(ts[body], "{")) {
      body_end = SkipBalanced(ts, body, '{', '}');
      ++body;  // range excludes the braces themselves
      if (body_end > body) --body_end;
    } else {
      // Single-statement body: up to the ';' at brace/paren depth zero.
      body_end = body;
      int paren = 0;
      while (body_end < end) {
        const Token& u = ts[body_end];
        if (u.kind == Kind::kPunct) {
          if (u.text == "(" || u.text == "{") ++paren;
          if (u.text == ")" || u.text == "}") --paren;
          if (u.text == ";" && paren == 0) break;
        }
        ++body_end;
      }
    }
    loops->push_back({body, std::min(body_end, end), line});
    // Continue scanning from inside the loop header/body so nested loops
    // are found too (i advances one token at a time).
  }
}

/// Declaration-scope statement classifier: decides whether the class-scope
/// tokens [begin, end) declare a data member, and appends it if so.
void ClassifyMember(const std::vector<Token>& ts, size_t begin, size_t end,
                    ClassInfo* cls) {
  if (begin >= end) return;
  static const std::unordered_set<std::string> reject_lead = {
      "using",  "typedef", "friend", "template", "static_assert",
      "virtual", "explicit", "operator", "enum", "class", "struct", "union",
      "public", "private", "protected"};
  if (IsIdent(ts[begin]) && reject_lead.count(ts[begin].text)) return;

  bool guarded = false;
  bool is_static = false;
  bool is_mutable = false;
  std::vector<Token> decl;
  for (size_t i = begin; i < end; ++i) {
    const Token& t = ts[i];
    if (IsIdent(t) && i + 1 < end && Is(ts[i + 1], "(") &&
        LooksLikeAnnotationMacro(t.text)) {
      if (t.text.find("GUARDED_BY") != std::string::npos) guarded = true;
      i = SkipBalanced(ts, i + 1, '(', ')') - 1;
      continue;
    }
    if (IsIdent(t) && t.text == "static") {
      is_static = true;
      continue;
    }
    if (IsIdent(t) && t.text == "mutable") {
      is_mutable = true;
      continue;
    }
    // Brace-or-equals initializer ends the declarator part.
    if (t.kind == Kind::kPunct && (t.text == "=" || t.text == "{")) break;
    decl.push_back(t);
  }
  // Strip a trailing array extent.
  while (!decl.empty() && Is(decl.back(), "]")) {
    while (!decl.empty() && !Is(decl.back(), "[")) decl.pop_back();
    if (!decl.empty()) decl.pop_back();
  }
  if (decl.size() < 2) return;  // a member needs at least a type and a name
  const Token& name_tok = decl.back();
  if (!IsIdent(name_tok)) return;  // `int f()` etc. end with ')'
  static const std::unordered_set<std::string> reject_name = {
      "const", "noexcept", "override", "final", "default", "delete",
      "constexpr", "volatile"};
  if (reject_name.count(name_tok.text)) return;
  for (const Token& t : decl) {
    if (Is(t, "->")) return;  // trailing-return function declaration
  }

  Member m;
  m.name = name_tok.text;
  m.line = name_tok.line;
  m.guarded = guarded;
  m.is_static = is_static;
  // Tokens inside template angle brackets describe the argument types, not
  // the declarator — `shared_ptr<const Foo>` is a mutable member, and a '*'
  // inside `vector<int*>` does not make the member a pointer. Track angle
  // depth so const/pointer/reference detection only sees depth-0 tokens
  // (comparison operators cannot appear in a declarator, so '<' here is
  // always a template bracket; the lexer never fuses '>>').
  size_t last_star = static_cast<size_t>(-1);
  std::vector<int> depth_at(decl.size(), 0);
  int angle = 0;
  for (size_t i = 0; i + 1 < decl.size(); ++i) {
    if (Is(decl[i], "<")) ++angle;
    depth_at[i] = angle;
    if (Is(decl[i], ">") && angle > 0) --angle;
    m.type_tokens.push_back(decl[i].text);
    if (angle > 0) continue;
    if (Is(decl[i], "*")) last_star = i;
    if (Is(decl[i], "&")) m.is_reference = true;
  }
  // The member itself is const when `const` binds to the declarator: after
  // the last '*' for pointers, or anywhere (at depth 0) for value types.
  for (size_t i = 0; i + 1 < decl.size(); ++i) {
    if (!Is(decl[i], "const") || depth_at[i] > 0) continue;
    if (last_star == static_cast<size_t>(-1) || i > last_star) {
      m.is_const = true;
    }
  }
  if (is_mutable) m.is_const = false;
  cls->members.push_back(std::move(m));
}

struct Scope {
  enum class Kind { kNamespace, kClass, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;
  ClassInfo cls;  // only for kClass
};

std::string QualPrefix(const std::vector<Scope>& scopes) {
  std::string out;
  for (const Scope& s : scopes) {
    if (s.kind == Scope::Kind::kBlock || s.name.empty()) continue;
    out += s.name;
    out += "::";
  }
  return out;
}

}  // namespace

ParsedFile Parse(LexedFile lexed) {
  ParsedFile out;
  out.lex = std::move(lexed);
  const std::vector<Token>& ts = out.lex.tokens;
  std::vector<Scope> scopes;
  size_t stmt_start = 0;

  size_t i = 0;
  while (i < ts.size()) {
    const Token& t = ts[i];

    if (IsIdent(t) && t.text == "namespace") {
      // namespace [name[::name]] { ... }  |  namespace alias = ...;
      size_t j = i + 1;
      std::string name;
      while (j < ts.size() && (IsIdent(ts[j]) || Is(ts[j], "::"))) {
        if (IsIdent(ts[j])) name = ts[j].text;
        ++j;
      }
      if (j < ts.size() && Is(ts[j], "{")) {
        scopes.push_back({Scope::Kind::kNamespace, name, {}});
        i = j + 1;
        stmt_start = i;
        continue;
      }
      while (j < ts.size() && !Is(ts[j], ";")) ++j;  // alias / decl
      i = j + 1;
      stmt_start = i;
      continue;
    }

    if (IsIdent(t) && (t.text == "class" || t.text == "struct" ||
                       t.text == "union") &&
        !(i > stmt_start && IsIdent(ts[i - 1]) && ts[i - 1].text == "enum")) {
      // Find the class name: last plain identifier before '{', ':' or ';',
      // skipping attribute/annotation macro invocations and alignas.
      size_t j = i + 1;
      std::string name;
      int line = t.line;
      bool body = false;
      while (j < ts.size()) {
        if (Is(ts[j], ";") || Is(ts[j], "(")) break;  // fwd decl / fn param
        if (Is(ts[j], "{")) {
          body = true;
          break;
        }
        if (Is(ts[j], ":")) {
          // Base clause: scan on to the class body brace.
          while (j < ts.size() && !Is(ts[j], "{") && !Is(ts[j], ";")) ++j;
          body = j < ts.size() && Is(ts[j], "{");
          break;
        }
        if (IsIdent(ts[j])) {
          if (j + 1 < ts.size() && Is(ts[j + 1], "(")) {
            j = SkipBalanced(ts, j + 1, '(', ')');  // macro / alignas
            continue;
          }
          if (ts[j].text != "final") {
            name = ts[j].text;
            line = ts[j].line;
          }
        }
        ++j;
      }
      if (body && !name.empty()) {
        Scope s;
        s.kind = Scope::Kind::kClass;
        s.name = name;
        s.cls.name = name;
        s.cls.qual_name = QualPrefix(scopes) + name;
        s.cls.line = line;
        scopes.push_back(std::move(s));
        i = j + 1;
        stmt_start = i;
        continue;
      }
      // Forward declaration, template parameter, or unnamed struct in a
      // declarator: fall through to plain statement handling.
      i = j < ts.size() ? j : ts.size();
      if (i < ts.size() && Is(ts[i], ";")) {
        ++i;
        stmt_start = i;
      }
      continue;
    }

    if (IsIdent(t) && t.text == "enum") {
      size_t j = i + 1;
      while (j < ts.size() && !Is(ts[j], "{") && !Is(ts[j], ";")) ++j;
      if (j < ts.size() && Is(ts[j], "{")) j = SkipBalanced(ts, j, '{', '}');
      while (j < ts.size() && !Is(ts[j], ";")) ++j;
      i = j + 1;
      stmt_start = i;
      continue;
    }

    if (t.kind == Kind::kPunct && t.text == ":" && i > stmt_start &&
        IsIdent(ts[i - 1]) &&
        (ts[i - 1].text == "public" || ts[i - 1].text == "private" ||
         ts[i - 1].text == "protected")) {
      ++i;
      stmt_start = i;  // access specifier resets the statement
      continue;
    }

    if (t.kind == Kind::kPunct && t.text == "(") {
      // Candidate function: an identifier immediately precedes the paren.
      const bool named = i > 0 && IsIdent(ts[i - 1]) &&
                         !ControlKeywords().count(ts[i - 1].text) &&
                         !LooksLikeAnnotationMacro(ts[i - 1].text);
      size_t after = SkipBalanced(ts, i, '(', ')');
      if (!named) {
        i = i + 1;  // scan inside the parens normally
        continue;
      }
      // Look past trailers for a body '{', a ctor-init ':', or neither.
      size_t j = after;
      bool has_body = false;
      while (j < ts.size()) {
        const Token& u = ts[j];
        if (Is(u, "{")) {
          has_body = true;
          break;
        }
        if (Is(u, ";") || Is(u, "=") || Is(u, ",") || Is(u, ")")) break;
        if (Is(u, ":")) {
          // Constructor initializer list: ident (...)|{...} [, ...] then {.
          ++j;
          while (j < ts.size()) {
            while (j < ts.size() &&
                   (IsIdent(ts[j]) || Is(ts[j], "::") || Is(ts[j], "<") ||
                    Is(ts[j], ">") || Is(ts[j], ","))) {
              ++j;
            }
            if (j < ts.size() && Is(ts[j], "(")) {
              j = SkipBalanced(ts, j, '(', ')');
              continue;
            }
            if (j < ts.size() && Is(ts[j], "{")) {
              // Either a member brace-init or the body; a brace-init is
              // followed by ',' or another initializer, the body is not.
              size_t close = SkipBalanced(ts, j, '{', '}');
              if (close < ts.size() && Is(ts[close], ",")) {
                j = close;
                continue;
              }
              // Heuristic: an initializer-list brace right before the body
              // brace ends with '}' '{'. If the closer is followed by '{',
              // this was the last brace-init; otherwise it was the body.
              if (close < ts.size() && Is(ts[close], "{")) {
                j = close;
              }
              has_body = true;
              break;
            }
            break;
          }
          break;
        }
        if (IsIdent(u) || Is(u, "::") || Is(u, "->") || Is(u, "&") ||
            Is(u, "&&") || Is(u, "<") || Is(u, ">") || Is(u, "[") ||
            Is(u, "]") || Is(u, "*")) {
          ++j;
          continue;
        }
        break;
      }
      if (!has_body || j >= ts.size()) {
        i = i + 1;
        continue;
      }
      // Found a function definition whose body opens at j.
      const size_t body_open = Is(ts[j], "{") ? j : j;
      size_t body_end = SkipBalanced(ts, body_open, '{', '}');

      FunctionInfo fn;
      fn.simple_name = ts[i - 1].text;
      fn.line = ts[i - 1].line;
      // Back-walk `A::B::name` qualifiers written at the definition.
      std::string inline_qual;
      size_t back = i - 1;
      while (back >= 2 && Is(ts[back - 1], "::") && IsIdent(ts[back - 2])) {
        inline_qual = ts[back - 2].text + "::" + inline_qual;
        back -= 2;
      }
      fn.qual_name = QualPrefix(scopes) + inline_qual + fn.simple_name;
      // Everything between the statement start and the qualified name is the
      // return type (plus specifiers); ctors/dtors leave it empty.
      for (size_t r = stmt_start; r < back && r < ts.size(); ++r) {
        fn.ret_type.push_back(ts[r].text);
      }
      fn.body_begin = body_open + 1;
      fn.body_end = body_end > 0 ? body_end - 1 : body_end;
      FindLoops(ts, fn.body_begin, fn.body_end, &fn.loops);
      out.functions.push_back(std::move(fn));
      i = body_end;
      stmt_start = i;
      continue;
    }

    if (t.kind == Kind::kPunct && t.text == "{") {
      scopes.push_back({Scope::Kind::kBlock, "", {}});
      ++i;
      continue;
    }

    if (t.kind == Kind::kPunct && t.text == "}") {
      if (!scopes.empty()) {
        Scope done = std::move(scopes.back());
        scopes.pop_back();
        if (done.kind == Scope::Kind::kClass) {
          out.classes.push_back(std::move(done.cls));
          stmt_start = i + 1;
        } else if (done.kind == Scope::Kind::kNamespace) {
          stmt_start = i + 1;
        }
        // A block close inside a class-scope statement (brace-init) keeps
        // the statement open; stmt_start intentionally not reset.
      }
      ++i;
      continue;
    }

    if (t.kind == Kind::kPunct && t.text == ";") {
      if (!scopes.empty() && scopes.back().kind == Scope::Kind::kClass) {
        ClassifyMember(ts, stmt_start, i, &scopes.back().cls);
      }
      ++i;
      stmt_start = i;
      continue;
    }

    ++i;
  }

  // Unbalanced files: flush any classes still on the stack.
  while (!scopes.empty()) {
    if (scopes.back().kind == Scope::Kind::kClass) {
      out.classes.push_back(std::move(scopes.back().cls));
    }
    scopes.pop_back();
  }
  return out;
}

}  // namespace analyze
}  // namespace dialite
