#!/usr/bin/env python3
"""Parity check: dialite_analyze vs dialite_lint on the migrated rules.

The naked-thread and raw-socket rules now live in both tools — the regex
linter (tools/dialite_lint.py) and the token-level analyzer
(tools/analyze). This script runs both over tools/lint_fixtures/ and fails
if their per-file verdicts for those two rules ever disagree, so the rules
cannot silently drift apart while both implementations exist.

Usage:
  lint_parity.py --analyze BIN --lint LINT_PY --fixtures DIR
"""

import argparse
import importlib.util
import json
import os
import subprocess
import sys

PARITY_RULES = ("naked-thread", "raw-socket")


def load_linter(path):
    spec = importlib.util.spec_from_file_location("dialite_lint", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def lint_verdicts(linter, files):
    """file basename -> set of PARITY_RULES that fired under the linter."""
    verdicts = {}
    for path in files:
        # The linter scopes these rules to src/, so lint each fixture under
        # its pretended src/ path exactly like the linter's own self-test.
        findings = linter.lint_fixture_as_src(path)
        verdicts[os.path.basename(path)] = {
            f.rule for f in findings if f.rule in PARITY_RULES}
    return verdicts


def analyze_verdicts(analyze_bin, policy, files):
    """file basename -> set of PARITY_RULES that fired under the analyzer."""
    cmd = [analyze_bin, "--json", "--policy", policy] + files
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        print(f"lint_parity: {' '.join(cmd)} exited {proc.returncode}:\n"
              f"{proc.stderr}", file=sys.stderr)
        sys.exit(2)
    report = json.loads(proc.stdout)
    verdicts = {os.path.basename(p): set() for p in files}
    for finding in report["findings"]:
        if finding["check"] in PARITY_RULES:
            verdicts[os.path.basename(finding["file"])].add(finding["check"])
    return verdicts


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--analyze", required=True,
                        help="path to the dialite_analyze binary")
    parser.add_argument("--lint", required=True,
                        help="path to tools/dialite_lint.py")
    parser.add_argument("--fixtures", required=True,
                        help="fixture directory shared by both tools")
    args = parser.parse_args()

    files = sorted(
        os.path.join(args.fixtures, name)
        for name in os.listdir(args.fixtures)
        if name.endswith((".h", ".cc", ".cpp", ".hpp")))
    if not files:
        print(f"lint_parity: no fixtures under {args.fixtures}",
              file=sys.stderr)
        return 2

    linter = load_linter(args.lint)
    from_lint = lint_verdicts(linter, files)
    # The analyzer's policy exemptions are path-based and target src/, so
    # the real policy works unchanged on fixture paths.
    policy = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "policy.txt")
    from_analyze = analyze_verdicts(args.analyze, policy, files)

    failures = []
    fired_anywhere = set()
    for name in sorted(from_lint):
        lint_set = from_lint[name]
        analyze_set = from_analyze.get(name, set())
        fired_anywhere |= lint_set
        if lint_set != analyze_set:
            failures.append(
                f"{name}: lint fired {sorted(lint_set) or 'nothing'}, "
                f"analyze fired {sorted(analyze_set) or 'nothing'}")
    # A vacuous pass (neither rule fired on any fixture) means the fixtures
    # no longer exercise the migrated rules — that is also a failure.
    for rule in PARITY_RULES:
        if rule not in fired_anywhere:
            failures.append(
                f"no fixture makes '{rule}' fire; parity check is vacuous")

    if failures:
        for f in failures:
            print(f"PARITY FAIL: {f}", file=sys.stderr)
        return 1
    print(f"lint_parity: {len(files)} fixtures, verdicts agree on "
          f"{', '.join(PARITY_RULES)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
