#include "analyze/policy.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace dialite {
namespace analyze {

bool Policy::IsExempt(const std::string& check, const std::string& path) const {
  for (const auto& [c, substr] : exempt) {
    if (c == check && path.find(substr) != std::string::npos) return true;
  }
  return false;
}

bool Policy::ViewAllowed(const std::string& path) const {
  for (const std::string& substr : view_allow) {
    if (path.find(substr) != std::string::npos) return true;
  }
  return false;
}

bool LoadPolicy(const std::string& path, Policy* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open policy file: " + path;
    return false;
  }
  // Parse into a local and commit only on success: a failed load leaves
  // *out untouched, and a reused *out never accumulates across calls.
  Policy p;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> words;
    for (std::string w; ls >> w;) words.push_back(w);
    if (words.empty()) continue;
    const std::string& directive = words[0];
    // Every malformed line reports file:line plus the directive as written,
    // and the load fails — a typo can never silently drop an invariant.
    auto fail = [&](const std::string& what) {
      std::string text;
      for (size_t i = 0; i < words.size(); ++i) {
        if (i > 0) text += ' ';
        text += words[i];
      }
      *error = path + ":" + std::to_string(lineno) + ": " + what + ": '" +
               text + "'";
      return false;
    };
    const size_t args = words.size() - 1;
    if (directive == "exempt") {
      if (args != 2) return fail("exempt needs <check> <path-substring>");
      p.exempt.emplace_back(words[1], words[2]);
      continue;
    }
    if (args != 1) {
      return fail(args == 0 ? "directive needs an argument"
                            : "trailing junk after directive argument");
    }
    const std::string& a = words[1];
    if (directive == "seed") {
      p.seeds.push_back(a);
    } else if (directive == "stop") {
      p.stops.push_back(a);
    } else if (directive == "hot") {
      p.hot.insert(a);
    } else if (directive == "cancel-poll") {
      p.cancel_polls.insert(a);
    } else if (directive == "blocking") {
      p.blocking.insert(a);
    } else if (directive == "mutex-type") {
      p.mutex_types.insert(a);
    } else if (directive == "guard-exempt-type") {
      p.guard_exempt_types.insert(a);
    } else if (directive == "view-type") {
      p.view_types.insert(a);
    } else if (directive == "view-allow") {
      p.view_allow.push_back(a);
    } else if (directive == "lock-guard") {
      p.lock_guards.insert(a);
    } else if (directive == "status-type") {
      p.status_types.insert(a);
    } else if (directive == "alloc-fn") {
      p.alloc_fns.insert(a);
    } else if (directive == "alloc-type") {
      p.alloc_types.insert(a);
    } else if (directive == "defer") {
      p.defer.insert(a);
    } else {
      return fail("unknown directive");
    }
  }
  *out = std::move(p);
  return true;
}

}  // namespace analyze
}  // namespace dialite
