#include "analyze/policy.h"

#include <fstream>
#include <sstream>

namespace dialite {
namespace analyze {

bool Policy::IsExempt(const std::string& check, const std::string& path) const {
  for (const auto& [c, substr] : exempt) {
    if (c == check && path.find(substr) != std::string::npos) return true;
  }
  return false;
}

bool Policy::ViewAllowed(const std::string& path) const {
  for (const std::string& substr : view_allow) {
    if (path.find(substr) != std::string::npos) return true;
  }
  return false;
}

bool LoadPolicy(const std::string& path, Policy* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open policy file: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    std::string a, b;
    ls >> a;
    ls >> b;
    auto fail = [&](const char* what) {
      *error = path + ":" + std::to_string(lineno) + ": " + what;
      return false;
    };
    if (a.empty()) return fail("directive needs an argument");
    if (directive == "seed") {
      out->seeds.push_back(a);
    } else if (directive == "stop") {
      out->stops.push_back(a);
    } else if (directive == "hot") {
      out->hot.insert(a);
    } else if (directive == "cancel-poll") {
      out->cancel_polls.insert(a);
    } else if (directive == "blocking") {
      out->blocking.insert(a);
    } else if (directive == "mutex-type") {
      out->mutex_types.insert(a);
    } else if (directive == "guard-exempt-type") {
      out->guard_exempt_types.insert(a);
    } else if (directive == "view-type") {
      out->view_types.insert(a);
    } else if (directive == "view-allow") {
      out->view_allow.push_back(a);
    } else if (directive == "exempt") {
      if (b.empty()) return fail("exempt needs <check> <path-substring>");
      out->exempt.emplace_back(a, b);
    } else {
      return fail(("unknown directive '" + directive + "'").c_str());
    }
  }
  return true;
}

}  // namespace analyze
}  // namespace dialite
