// Known-good fixture for the no-cancel check, doubling as a raw-string
// lexer trap: the literal inside Handle contains an unpolled hot loop that
// must never be tokenized as code.
bool Cancelled();
int Score(int x);
void Log(const char* s);

int Handle(int n) {
  // If raw strings leaked into the token stream, this would read as an
  // unpolled loop calling Score and the self-test would fail.
  Log(R"sql(for (int i = 0; i < n; ++i) { total += Score(i); })sql");
  int total = 0;
  for (int i = 0; i < n; ++i) {
    if (Cancelled()) return total;
    total += Score(i);
  }
  return total;
}
