// Known-good fixture for the naked-thread check: qualified statics,
// std::this_thread, and prose mentions must all stay silent.
#include <thread>

const char* kDoc = "never write std::thread t; in library code";

unsigned PoolWidth() {
  // std::thread t; (comment mention — must not fire)
  return std::thread::hardware_concurrency();
}

void YieldOnce() { std::this_thread::yield(); }
