// Known-bad fixture for the naked-thread check: spawning std::thread
// directly instead of routing through the pool. The static query below must
// NOT fire — only the owning type is the rule's target.
#include <thread>

void Spawn() {
  unsigned n = std::thread::hardware_concurrency();  // fine: static query
  (void)n;
  std::thread worker([] {});  // check: naked-thread
  worker.join();
}
