// Known-bad fixture for the blocking check: a request entry point calls a
// banned blocking identifier (policy: sleep_for) on the serving path.
void Handle() {
  sleep_for(10);  // check: blocking
}
