// Known-good fixture for the lock-blocking check: the same transitively
// blocking call is fine once the guard's scope has closed — the check is
// flow-sensitive, not function-granular.
void SaveToDisk() { sleep_for(5); }

void Flush() {
  {
    MutexLock lock(mu_);
    dirty_ = false;
  }
  SaveToDisk();  // guard already released: silent
}
