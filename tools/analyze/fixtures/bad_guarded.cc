// Known-bad fixture for the no-guard check: Cache owns a Mutex, so every
// mutable non-atomic member needs a GUARDED_BY annotation or a waiver.
struct Cache {
  Mutex mu;
  int hits;  // check: no-guard
};
