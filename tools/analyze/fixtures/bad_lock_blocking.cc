// Known-bad fixture for the lock-blocking check: the MutexLock critical
// section in Flush reaches a blocking identifier only TRANSITIVELY, through
// SaveToDisk — invisible to a per-function scan, caught by the
// interprocedural may-block summary (chain: SaveToDisk -> sleep_for).
void SaveToDisk() { sleep_for(5); }

void Flush() {
  MutexLock lock(mu_);
  SaveToDisk();  // check: lock-blocking
}
