// Known-bad fixture for the raw-socket check: both the socket header and a
// globally-qualified socket syscall outside the net frame layer.
#include <sys/socket.h>

int OpenRogueSocket() {
  int fd = ::socket(2, 1, 0);  // check: raw-socket
  return fd;
}
