// Known-good fixture for the raw-socket check: class-qualified calls that
// share a syscall's name, prose mentions, and string literals are silent.
#include <string>

struct Conn {
  static int connect(int fd);
};

int Use() {
  // ::socket(AF_INET, ...) in a comment must not fire.
  std::string doc = "call ::socket() only inside src/server/net.cc";
  return Conn::connect(3);
}
