// Known-bad fixture for the status-drop check: Handle binds the Status
// returned by Load to a local and never consults it again. Class-level
// [[nodiscard]] is satisfied by the binding, so only the data-flow check
// (returns-status summary + never-used local) catches this.
Status Load(int id) { return Status(); }

int Handle(int id) {
  Status st = Load(id);  // check: status-drop
  return id;
}
