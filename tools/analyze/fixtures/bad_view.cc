// Known-bad fixture for the view-escape check: ColumnView is a borrowed
// view (policy view-type) and may not be stored as a class member outside
// the allowlisted owner layers.
class RowCursor {
  ColumnView view_;  // check: view-escape
  int pos_ = 0;
};
