/* Known-good fixture for the no-guard check, doubling as a block-comment
 * lexer trap: this comment contains what looks like a nested opener /* and
 * the first closer below ends it (block comments do not nest). */
struct GoodCache {
  Mutex mu;
  int hits GUARDED_BY(mu);
  atomic<int> lookups;  // guard-exempt type
  static int limit;    // statics are out of scope for the audit
  /* A multi-line comment hiding a decoy member declaration:
       int naked_decoy;
     If block comments ended at newlines, the decoy would leak out as an
     unguarded member and the self-test would fail. */
};
