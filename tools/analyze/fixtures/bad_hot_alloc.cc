// Known-bad fixture for the hot-alloc check: Handle is a request entry
// point (policy seed) and its loop polls cancellation, marking it
// request-hot — yet it constructs a `string` (policy alloc-type) every
// iteration. Reported as a note: the arena-PR inventory, not a hard error.
bool Cancelled();

int Handle(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {  // check: hot-alloc
    if (Cancelled()) return total;
    string row(16, 'x');
    total += row.size();
  }
  return total;
}
