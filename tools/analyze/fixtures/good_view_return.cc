// Known-good fixture for the view-return check: owning data may cross a
// deferred boundary, and borrowed views are fine as parameters and locals
// that never leave the frame.
void Fanout() {
  OwnedColumn rows = Materialize();
  Submit([rows]() { Use(rows); });  // owning copy: silent
}

int Width(ColumnView view) {
  ColumnView local = view;
  return local.size();
}
