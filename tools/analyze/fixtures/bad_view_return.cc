// Known-bad fixture for the view-return check, both escape shapes:
//  (1) a function outside the owner layers returning a borrowed view type;
//  (2) a view-typed local captured into a task handed to a deferred
//      execution point (policy defer: Submit) that can outlive its anchor.
ColumnView Slice(int col) {  // check: view-return (borrowed return type)
  ColumnView v;
  return v;
}

void Fanout() {
  ColumnView rows = Snapshot();
  Submit([rows]() { Use(rows); });  // check: view-return (deferred capture)
}
