// Known-good fixture for the hot-alloc check: the allocation is hoisted
// out of the cancel-polled loop, so each iteration only reuses the scratch
// buffer — exactly the rewrite the arena work list asks for.
bool Cancelled();

int Handle(int n) {
  string scratch(16, 'x');  // one-time setup cost, outside the loop
  int total = 0;
  for (int i = 0; i < n; ++i) {
    if (Cancelled()) return total;
    total += scratch.size();
  }
  return total;
}
