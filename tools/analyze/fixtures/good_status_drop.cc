// Known-good fixture for the status-drop check: the bound Status is
// consulted before the function returns, so the error cannot vanish.
Status Load(int id) { return Status(); }

int Handle(int id) {
  Status st = Load(id);
  if (!st.ok()) return -1;
  return id;
}
