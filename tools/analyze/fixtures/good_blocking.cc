// Known-good fixture for the blocking check, doubling as a
// line-continuation lexer trap: the macro body below mentions sleep_for,
// but a preprocessor logical line (with backslash splices) emits no tokens.
void DoWork();

#define NAP_AND_RETRY()   \
  do {                    \
    sleep_for(backoff_ms) \
  } while (0)

void Handle() {
  // If the lexer dropped the splice, the macro's sleep_for would appear as
  // ordinary tokens and the blocking check would fire here.
  DoWork();
}
