// Known-good fixture for the view-escape check: borrowed views are fine as
// parameters and locals — only storage in a class member escapes its
// snapshot anchor.
int Sum(ColumnView view) {
  int total = 0;
  for (int i = 0; i < view.size(); ++i) {
    ColumnView local = view;
    total += local.at(i);
  }
  return total;
}

class RowBuffer {
  OwnedColumn owned_;  // owning storage is fine
  int pos_ = 0;
};
