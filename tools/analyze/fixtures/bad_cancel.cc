// Known-bad fixture for the no-cancel check: Handle is a request entry
// point (policy seed), its loop calls the hot helper Score, and nothing in
// the loop body polls a CancelToken.
int Score(int x) { return x * 2; }

int Handle(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    total += Score(i);  // check: no-cancel
  }
  return total;
}
