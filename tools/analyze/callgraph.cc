#include "analyze/callgraph.h"

#include <algorithm>
#include <deque>
#include <functional>

namespace dialite {
namespace analyze {

namespace {

using Kind = Token::Kind;

const std::unordered_set<std::string>& NonCallKeywords() {
  static const std::unordered_set<std::string> kw = {
      "if",    "for",      "while",  "switch",      "catch",  "return",
      "sizeof", "alignof", "decltype", "new",       "delete", "throw",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "static_assert", "assert", "defined", "alignas", "noexcept"};
  return kw;
}

}  // namespace

Project Project::Build(std::vector<ParsedFile> parsed) {
  Project p;
  p.files = std::move(parsed);
  for (size_t f = 0; f < p.files.size(); ++f) {
    for (size_t k = 0; k < p.files[f].functions.size(); ++k) {
      p.fns.push_back({f, k});
    }
  }
  return p;
}

CallGraph::CallGraph(const Project& project) : project_(project) {
  calls_.resize(project_.fns.size());
  for (size_t id = 0; id < project_.fns.size(); ++id) {
    const FunctionInfo& fn = project_.fn(id);
    by_simple_name_[fn.simple_name].push_back(id);
    const std::vector<Token>& ts = project_.file_of(id).lex.tokens;
    for (size_t i = fn.body_begin; i + 1 < fn.body_end && i < ts.size(); ++i) {
      if (ts[i].kind != Kind::kIdent) continue;
      if (ts[i + 1].kind != Kind::kPunct || ts[i + 1].text != "(") continue;
      if (NonCallKeywords().count(ts[i].text)) continue;
      calls_[id].insert(ts[i].text);
    }
  }
}

bool CallGraph::Matches(const FunctionInfo& fn, const std::string& pattern) {
  if (pattern.find("::") == std::string::npos) {
    return fn.simple_name == pattern;
  }
  const std::string& q = fn.qual_name;
  if (q == pattern) return true;
  if (q.size() > pattern.size() &&
      q.compare(q.size() - pattern.size(), pattern.size(), pattern) == 0 &&
      q.compare(q.size() - pattern.size() - 2, 2, "::") == 0) {
    return true;
  }
  return false;
}

std::vector<size_t> CallGraph::Reachable(
    const std::vector<std::string>& seeds,
    const std::vector<std::string>& stops) const {
  std::vector<bool> stopped(project_.fns.size(), false);
  for (size_t id = 0; id < project_.fns.size(); ++id) {
    for (const std::string& s : stops) {
      if (Matches(project_.fn(id), s)) {
        stopped[id] = true;
        break;
      }
    }
  }
  std::vector<bool> seen(project_.fns.size(), false);
  std::deque<size_t> work;
  for (size_t id = 0; id < project_.fns.size(); ++id) {
    if (stopped[id]) continue;
    for (const std::string& s : seeds) {
      if (Matches(project_.fn(id), s)) {
        seen[id] = true;
        work.push_back(id);
        break;
      }
    }
  }
  while (!work.empty()) {
    size_t id = work.front();
    work.pop_front();
    for (const std::string& callee : calls_[id]) {
      auto it = by_simple_name_.find(callee);
      if (it == by_simple_name_.end()) continue;
      for (size_t next : it->second) {
        if (seen[next] || stopped[next]) continue;
        seen[next] = true;
        work.push_back(next);
      }
    }
  }
  std::vector<size_t> out;
  for (size_t id = 0; id < seen.size(); ++id) {
    if (seen[id]) out.push_back(id);
  }
  return out;
}

IncludeGraph::IncludeGraph(const Project& project) : project_(project) {
  edges_.resize(project_.files.size());
  for (size_t f = 0; f < project_.files.size(); ++f) {
    for (const Include& inc : project_.files[f].lex.includes) {
      if (inc.system) continue;
      // Resolve by path suffix on a '/' boundary (or full-path equality).
      for (size_t g = 0; g < project_.files.size(); ++g) {
        const std::string& p = project_.files[g].lex.path;
        if (p == inc.path) {
          edges_[f].push_back(g);
          continue;
        }
        if (p.size() > inc.path.size() &&
            p.compare(p.size() - inc.path.size(), inc.path.size(),
                      inc.path) == 0 &&
            p[p.size() - inc.path.size() - 1] == '/') {
          edges_[f].push_back(g);
        }
      }
    }
  }
}

std::vector<std::string> IncludeGraph::FindCycle() const {
  const size_t n = edges_.size();
  // 0 = unvisited, 1 = on the current DFS path, 2 = done.
  std::vector<int> state(n, 0);
  std::vector<size_t> path;
  std::vector<std::string> cycle;

  std::function<bool(size_t)> dfs = [&](size_t u) {
    state[u] = 1;
    path.push_back(u);
    for (size_t v : edges_[u]) {
      if (state[v] == 1) {
        // Found a back edge: emit the path from v to u plus v again.
        auto at = std::find(path.begin(), path.end(), v);
        for (auto it = at; it != path.end(); ++it) {
          cycle.push_back(project_.files[*it].lex.path);
        }
        cycle.push_back(project_.files[v].lex.path);
        return true;
      }
      if (state[v] == 0 && dfs(v)) return true;
    }
    path.pop_back();
    state[u] = 2;
    return false;
  };
  for (size_t u = 0; u < n; ++u) {
    if (state[u] == 0 && dfs(u)) return cycle;
  }
  return {};
}

}  // namespace analyze
}  // namespace dialite
