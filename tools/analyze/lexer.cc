#include "analyze/lexer.h"

#include <cctype>
#include <cstddef>

namespace dialite {
namespace analyze {

namespace {

/// Character cursor over the source with backslash-newline splicing: a
/// `\`+newline pair is invisible to the token stream but still advances the
/// line counter, exactly like translation phase 2.
class Cursor {
 public:
  explicit Cursor(const std::string& src) : src_(src) { Splice(); }

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return AtEnd() ? '\0' : src_[pos_]; }
  char PeekAt(size_t ahead) const {
    // Lookahead ignores splices only at the current position (done in
    // Splice); a splice between lookahead chars is rare enough that callers
    // re-check after Advance().
    size_t p = pos_ + ahead;
    return p < src_.size() ? src_[p] : '\0';
  }
  int line() const { return line_; }

  void Advance() {
    if (AtEnd()) return;
    if (src_[pos_] == '\n') ++line_;
    ++pos_;
    Splice();
  }

 private:
  void Splice() {
    while (pos_ + 1 < src_.size() && src_[pos_] == '\\' &&
           (src_[pos_ + 1] == '\n' ||
            (src_[pos_ + 1] == '\r' && pos_ + 2 < src_.size() &&
             src_[pos_ + 2] == '\n'))) {
      pos_ += src_[pos_ + 1] == '\r' ? 3 : 2;
      ++line_;
    }
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses waiver directives out of one comment's text. Recognized forms:
///   analyze: <directive>(<detail>)
///   dialite-lint: allow(<rules>)   -> directive "lint-allow"
void ScanCommentForWaivers(const std::string& comment, int line,
                           std::vector<Waiver>* waivers) {
  auto extract = [&](const std::string& marker,
                     bool lint) {
    size_t at = comment.find(marker);
    while (at != std::string::npos) {
      size_t p = at + marker.size();
      while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
      std::string directive;
      while (p < comment.size() &&
             (IsIdentChar(comment[p]) || comment[p] == '-')) {
        directive += comment[p++];
      }
      if (!directive.empty() && p < comment.size() && comment[p] == '(') {
        size_t close = comment.find(')', p);
        if (close != std::string::npos) {
          std::string detail = comment.substr(p + 1, close - p - 1);
          if (lint) {
            if (directive == "allow") {
              waivers->push_back({"lint-allow", detail, line});
            }
          } else {
            waivers->push_back({directive, detail, line});
          }
        }
      }
      at = comment.find(marker, at + marker.size());
    }
  };
  extract("analyze:", /*lint=*/false);
  extract("dialite-lint:", /*lint=*/true);
}

/// After 'R' and an optional encoding prefix, true if a raw string opens
/// here (cursor on the '"').
bool ConsumeRawString(Cursor* cur) {
  // cur is on '"'. Read the delimiter up to '('.
  cur->Advance();
  std::string delim;
  while (!cur->AtEnd() && cur->Peek() != '(') {
    delim += cur->Peek();
    cur->Advance();
  }
  cur->Advance();  // '('
  const std::string closer = ")" + delim + "\"";
  std::string tail;
  while (!cur->AtEnd()) {
    tail += cur->Peek();
    if (tail.size() > closer.size()) tail.erase(0, 1);
    cur->Advance();
    if (tail == closer) return true;
  }
  return false;  // unterminated; tolerate
}

void ConsumeQuoted(Cursor* cur, char quote) {
  cur->Advance();  // opening quote
  while (!cur->AtEnd()) {
    char c = cur->Peek();
    if (c == '\\') {
      cur->Advance();
      cur->Advance();
      continue;
    }
    cur->Advance();
    if (c == quote || c == '\n') break;  // newline: unterminated, recover
  }
}

/// Consumes a preprocessor logical line (cursor on '#'); records #include
/// targets. Splices are already handled by Cursor, so "logical line" is
/// simply up to the next real newline; comments and strings inside the
/// directive are skipped so a '/' in a path or a "//" in a macro body can't
/// derail the scan.
void ConsumePreprocessor(Cursor* cur, LexedFile* out,
                         std::vector<Waiver>* waivers) {
  const int line = cur->line();
  std::string text;
  while (!cur->AtEnd() && cur->Peek() != '\n') {
    char c = cur->Peek();
    if (c == '/' && cur->PeekAt(1) == '/') {
      std::string comment;
      while (!cur->AtEnd() && cur->Peek() != '\n') {
        comment += cur->Peek();
        cur->Advance();
      }
      ScanCommentForWaivers(comment, cur->line(), waivers);
      break;
    }
    if (c == '/' && cur->PeekAt(1) == '*') {
      cur->Advance();
      cur->Advance();
      std::string comment;
      while (!cur->AtEnd()) {
        if (cur->Peek() == '*' && cur->PeekAt(1) == '/') {
          cur->Advance();
          cur->Advance();
          break;
        }
        comment += cur->Peek();
        cur->Advance();
      }
      ScanCommentForWaivers(comment, line, waivers);
      continue;
    }
    if (c == '"' || c == '<') {
      // Potential include target. Only meaningful for #include lines but
      // harmless otherwise (macro strings are simply skipped).
      char closer = c == '"' ? '"' : '>';
      cur->Advance();
      std::string target;
      while (!cur->AtEnd() && cur->Peek() != closer && cur->Peek() != '\n') {
        target += cur->Peek();
        cur->Advance();
      }
      if (!cur->AtEnd() && cur->Peek() == closer) cur->Advance();
      if (text.find("include") != std::string::npos && !target.empty()) {
        out->includes.push_back({target, closer == '>', line});
      }
      text += closer;
      continue;
    }
    text += c;
    cur->Advance();
  }
}

}  // namespace

LexedFile Lex(std::string path, const std::string& source) {
  LexedFile out;
  out.path = std::move(path);
  Cursor cur(source);
  bool line_start = true;  // only whitespace seen since the last newline

  while (!cur.AtEnd()) {
    char c = cur.Peek();
    if (c == '\n') {
      line_start = true;
      cur.Advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.Advance();
      continue;
    }
    if (c == '#' && line_start) {
      ConsumePreprocessor(&cur, &out, &out.waivers);
      continue;
    }
    line_start = false;
    if (c == '/' && cur.PeekAt(1) == '/') {
      std::string comment;
      while (!cur.AtEnd() && cur.Peek() != '\n') {
        comment += cur.Peek();
        cur.Advance();
      }
      // Waivers anchor at the line the comment ENDS on: a backslash splice
      // extends a // comment onto further physical lines, and "this line
      // plus the next" must count from the last of them.
      ScanCommentForWaivers(comment, cur.line(), &out.waivers);
      continue;
    }
    if (c == '/' && cur.PeekAt(1) == '*') {
      // Block comments do not nest: the first "*/" closes, even after an
      // inner "/*" (a classic lexer trap the fixtures exercise).
      cur.Advance();
      cur.Advance();
      std::string comment;
      while (!cur.AtEnd()) {
        if (cur.Peek() == '*' && cur.PeekAt(1) == '/') {
          cur.Advance();
          cur.Advance();
          break;
        }
        comment += cur.Peek();
        cur.Advance();
      }
      // Same end-line anchoring for multi-line block comments.
      ScanCommentForWaivers(comment, cur.line(), &out.waivers);
      continue;
    }
    if (c == '"') {
      out.tokens.push_back({Token::Kind::kString, "\"\"", cur.line()});
      ConsumeQuoted(&cur, '"');
      continue;
    }
    if (c == '\'') {
      out.tokens.push_back({Token::Kind::kChar, "''", cur.line()});
      ConsumeQuoted(&cur, '\'');
      continue;
    }
    if (IsIdentStart(c)) {
      const int line = cur.line();
      std::string ident;
      while (!cur.AtEnd() && IsIdentChar(cur.Peek())) {
        ident += cur.Peek();
        cur.Advance();
      }
      // Raw string with an optional encoding prefix: R"..., u8R"..., LR"...
      if (!ident.empty() && ident.back() == 'R' && cur.Peek() == '"' &&
          (ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
           ident == "u8R")) {
        out.tokens.push_back({Token::Kind::kString, "\"\"", line});
        ConsumeRawString(&cur);
        continue;
      }
      out.tokens.push_back({Token::Kind::kIdent, std::move(ident), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const int line = cur.line();
      std::string num;
      while (!cur.AtEnd() &&
             (IsIdentChar(cur.Peek()) || cur.Peek() == '.' ||
              cur.Peek() == '\'')) {
        num += cur.Peek();
        cur.Advance();
      }
      out.tokens.push_back({Token::Kind::kNumber, std::move(num), line});
      continue;
    }
    if (c == ':' && cur.PeekAt(1) == ':') {
      out.tokens.push_back({Token::Kind::kPunct, "::", cur.line()});
      cur.Advance();
      cur.Advance();
      continue;
    }
    out.tokens.push_back({Token::Kind::kPunct, std::string(1, c), cur.line()});
    cur.Advance();
  }
  return out;
}

size_t SkipBalanced(const std::vector<Token>& ts, size_t open, char open_ch,
                    char close_ch) {
  int depth = 0;
  const std::string open_s(1, open_ch);
  const std::string close_s(1, close_ch);
  for (size_t i = open; i < ts.size(); ++i) {
    if (ts[i].kind == Token::Kind::kPunct) {
      if (ts[i].text == open_s) ++depth;
      if (ts[i].text == close_s && --depth == 0) return i + 1;
    }
  }
  return ts.size();
}

bool HasWaiver(const LexedFile& file, const std::string& directive, int line) {
  bool found = false;
  for (const Waiver& w : file.waivers) {
    if (w.directive == directive && (w.line == line || w.line == line - 1)) {
      w.used = true;
      found = true;
    }
  }
  return found;
}

bool HasLintWaiver(const LexedFile& file, const std::string& rule, int line) {
  for (const Waiver& w : file.waivers) {
    if (w.directive != "lint-allow") continue;
    if (w.line != line && w.line != line - 1) continue;
    // detail is a comma-separated rule list; match whole rule names.
    size_t at = 0;
    while (at < w.detail.size()) {
      while (at < w.detail.size() &&
             (w.detail[at] == ' ' || w.detail[at] == ',')) {
        ++at;
      }
      size_t end = at;
      while (end < w.detail.size() && w.detail[end] != ',' &&
             w.detail[end] != ' ') {
        ++end;
      }
      if (w.detail.substr(at, end - at) == rule) {
        w.used = true;
        return true;
      }
      at = end;
    }
  }
  return false;
}

}  // namespace analyze
}  // namespace dialite
