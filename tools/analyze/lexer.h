#ifndef DIALITE_TOOLS_ANALYZE_LEXER_H_
#define DIALITE_TOOLS_ANALYZE_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dialite {
namespace analyze {

/// One lexical token of a C++ translation unit with comments, string
/// contents and preprocessor lines stripped. `line` is 1-based and survives
/// backslash-newline splices (the token is stamped with the line it starts
/// on in the original file).
struct Token {
  enum class Kind {
    kIdent,    ///< identifier or keyword
    kNumber,   ///< numeric literal (incl. hex / digit separators)
    kString,   ///< string literal, contents dropped (text is "\"\"")
    kChar,     ///< character literal, contents dropped
    kPunct,    ///< punctuation; "::" is fused into a single token
  };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

/// A `// analyze: <directive>(<detail>)` waiver comment, or a legacy
/// `// dialite-lint: allow(<rules>)` waiver (directive == "lint-allow").
/// A waiver covers its own line and the following line, so it can trail a
/// construct or sit on the line above it.
struct Waiver {
  std::string directive;  ///< "no-cancel", "allow-blocking", ..., "lint-allow"
  std::string detail;     ///< reason text / comma-separated lint rules
  int line = 0;
  /// Set by HasWaiver/HasLintWaiver when the waiver actually suppresses a
  /// finding; the stale-waiver pass warns about waivers that never fire.
  /// Mutable because checks only see the project const.
  mutable bool used = false;
};

/// Lexed view of one file: the token stream, every waiver comment, and the
/// quoted-include list (for the include graph). Angle includes are kept too,
/// flagged by `system`.
struct Include {
  std::string path;
  bool system = false;  ///< <...> include
  int line = 0;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Waiver> waivers;
  std::vector<Include> includes;
};

/// Tokenizes `source`. Handles //-comments, /*...*/ block comments (which
/// do NOT nest, per the language), ordinary/char/raw string literals
/// (R"delim(...)delim" with optional encoding prefix), backslash-newline
/// line splices (inside tokens, strings and comments alike) and
/// preprocessor logical lines (consumed entirely; #include paths are
/// recorded).
LexedFile Lex(std::string path, const std::string& source);

/// True if any waiver in `file` with the given directive covers `line`
/// (waivers cover their own line and the next).
bool HasWaiver(const LexedFile& file, const std::string& directive, int line);

/// True if a lint-allow waiver naming `rule` covers `line`.
bool HasLintWaiver(const LexedFile& file, const std::string& rule, int line);

/// ts[open] is the opener punctuation; returns the index ONE PAST the
/// matching closer (or ts.size() if unbalanced). Shared by the declaration
/// parser, the CFG builder, and the checks.
size_t SkipBalanced(const std::vector<Token>& ts, size_t open, char open_ch,
                    char close_ch);

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_LEXER_H_
