#ifndef DIALITE_TOOLS_ANALYZE_DECLS_H_
#define DIALITE_TOOLS_ANALYZE_DECLS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/lexer.h"

namespace dialite {
namespace analyze {

/// A data member of a class/struct.
struct Member {
  std::string name;
  std::vector<std::string> type_tokens;  ///< declaration tokens before the name
  int line = 0;
  bool guarded = false;    ///< carries a *GUARDED_BY(...) annotation
  bool is_static = false;
  bool is_const = false;   ///< the member itself is immutable (const after
                           ///< the last '*', or const value type)
  bool is_reference = false;
};

/// A class or struct definition (nested definitions are reported
/// separately, with qualified names like "Outer::Inner").
struct ClassInfo {
  std::string name;       ///< simple name
  std::string qual_name;  ///< namespace- and outer-class-qualified
  int line = 0;
  std::vector<Member> members;
};

/// A for/while/do loop inside a function body. Ranges are token indices
/// into the owning file's token stream and cover the loop BODY only.
struct Loop {
  size_t body_begin = 0;
  size_t body_end = 0;  ///< exclusive
  int line = 0;         ///< line of the for/while/do keyword
};

/// A function *definition* (has a body). Ranges are token indices into the
/// owning file's token stream; lambdas defined inside a function belong to
/// its body range, so their loops and call sites attribute to the enclosing
/// function.
struct FunctionInfo {
  std::string simple_name;
  std::string qual_name;  ///< e.g. "DialiteServer::Handle" (namespaces kept)
  int line = 0;
  size_t body_begin = 0;
  size_t body_end = 0;  ///< exclusive
  std::vector<Loop> loops;
  /// Declaration tokens preceding the (possibly qualified) function name:
  /// the return type plus leading specifiers (`static`, `inline`, ...).
  /// Empty for constructors/destructors. The data-flow layer consults this
  /// for the returns-Status and view-return summaries.
  std::vector<std::string> ret_type;
};

struct ParsedFile {
  LexedFile lex;
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;
};

/// Single-pass declaration parser over the token stream: tracks namespace /
/// class / block scopes by brace matching, records class members with their
/// GUARDED_BY state, and function definitions with their loop extents. It
/// is a heuristic parser — template metaprogramming can confuse it — but
/// the repo's house style (clang-format, no macros generating declarations)
/// keeps it exact in practice.
ParsedFile Parse(LexedFile lexed);

}  // namespace analyze
}  // namespace dialite

#endif  // DIALITE_TOOLS_ANALYZE_DECLS_H_
