#!/usr/bin/env python3
"""dialite_lint: repo-invariant linter for the DIALITE codebase.

Enforces project rules that neither the compiler nor clang-tidy know about:

  deprecated-row-api      The row-materializing Table wrappers (ColumnValues,
                          DistinctColumnValues, ColumnTokenSet) are kept only
                          for external callers; library code under src/ must
                          use the zero-copy ColumnView equivalents.
  naked-thread            Production code under src/ never spawns std::thread
                          directly; all parallelism routes through
                          common/thread_pool so shutdown, exception capture
                          and observability stay centralized. (Static queries
                          like std::thread::hardware_concurrency are fine, and
                          tests may race raw threads against the pool.)
  using-namespace-header  `using namespace` in a header leaks into every
                          includer.
  nondeterminism          rand()/srand()/std::random_device anywhere outside
                          src/common/rng would break the reproducibility
                          guarantee (indexes, sketches and generated lakes are
                          bit-identical across runs and machines).
  include-guard           Every header carries a classic #ifndef/#define/
                          #endif guard (the project does not use
                          #pragma once).
  raw-sync-primitive      Raw std synchronization types (std::mutex,
                          std::shared_mutex, std::condition_variable,
                          std::lock_guard, std::unique_lock, ...) anywhere
                          under src/ outside common/sync.h. All locking
                          goes through the annotated dialite::Mutex /
                          MutexLock wrappers so Clang Thread Safety
                          Analysis and the DIALITE_DEBUG_SYNC lock-order
                          detector see every acquire. (std::once_flag /
                          std::call_once are allowed; tests may use raw
                          primitives to race against the wrappers.)
  raw-socket              The BSD socket API (socket/bind/listen/accept/
                          recv/send and the socket headers) anywhere under
                          src/ outside src/server/net.{h,cc}. The serving
                          daemon's whole socket surface lives behind
                          TcpConn/TcpListener so handlers and the HTTP
                          parser stay testable without a network.

Usage:
  tools/dialite_lint.py [paths...]     lint files/dirs (default: src tests bench)
  tools/dialite_lint.py --jobs N       lint files on N worker processes
                                       (0 = one per CPU); default serial
  tools/dialite_lint.py --self-test    run every rule against its known-bad
                                       fixture under tools/lint_fixtures and
                                       fail unless each rule fires

A finding can be waived on its line with a trailing comment:
  std::thread t(...);  // dialite-lint: allow(naked-thread)

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "lint_fixtures")

SOURCE_EXTS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")
HEADER_EXTS = (".h", ".hh", ".hpp")

WAIVER_RE = re.compile(r"//\s*dialite-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line structure.

    Lint patterns then can't false-positive on prose like
    `// == Table::ColumnValues` while reported line numbers stay exact.
    Waiver comments are honored separately, before stripping.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rel(path):
    try:
        return os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    except ValueError:
        return path.replace(os.sep, "/")


# --- Rules -------------------------------------------------------------------

DEPRECATED_ROW_API_RE = re.compile(
    r"\b(ColumnValues|DistinctColumnValues|ColumnTokenSet)\s*\(")
# std::thread not followed by :: (declaration/construction, not a static query).
NAKED_THREAD_RE = re.compile(r"\bstd\s*::\s*thread\b(?!\s*::)")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b", re.MULTILINE)
NONDETERMINISM_RE = re.compile(r"\b(?:s?rand\s*\(|std\s*::\s*random_device\b)")
RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")
# BSD socket API: the socket-header includes plus the globally-qualified
# calls (the `::` prefix keeps methods like Server::Shutdown out).
RAW_SOCKET_RE = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|netinet/[\w.]+|arpa/inet\.h)>"
    r"|(?<!:)::\s*(?:socket|accept4?|bind|listen|connect|recv|recvfrom|"
    r"send|sendto|getsockname|getpeername)\s*\(")


def in_dir(relpath, prefix):
    return relpath == prefix or relpath.startswith(prefix + "/")


def basename_is(relpath, *names):
    return os.path.basename(relpath) in names


def rule_deprecated_row_api(relpath, raw, code, findings):
    if not in_dir(relpath, "src"):
        return
    # The wrappers' own declaration/definition (and their delegating bodies)
    # live in table.h/table.cc; everything else in src/ must not call them.
    if basename_is(relpath, "table.h", "table.cc"):
        return
    for m in DEPRECATED_ROW_API_RE.finditer(code):
        line = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            relpath, line, "deprecated-row-api",
            f"Table::{m.group(1)} materializes rows; use the ColumnView "
            f"equivalent (ColumnMaterialize/ColumnDistinct/ColumnTokens)"))


def rule_naked_thread(relpath, raw, code, findings):
    if not in_dir(relpath, "src"):
        return
    if basename_is(relpath, "thread_pool.h", "thread_pool.cc"):
        return
    # The serving daemon's accept loop must block in accept() indefinitely,
    # which would wedge a pooled worker; its NetThread wrapper is the one
    # sanctioned raw thread (see src/server/net.h).
    if relpath in ("src/server/net.h", "src/server/net.cc"):
        return
    for m in NAKED_THREAD_RE.finditer(code):
        line = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            relpath, line, "naked-thread",
            "spawn work through common/thread_pool, not raw std::thread"))


def rule_using_namespace_header(relpath, raw, code, findings):
    if not relpath.endswith(HEADER_EXTS):
        return
    for m in USING_NAMESPACE_RE.finditer(code):
        line = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            relpath, line, "using-namespace-header",
            "`using namespace` in a header leaks into every includer"))


def rule_nondeterminism(relpath, raw, code, findings):
    if basename_is(relpath, "rng.h", "rng.cc") and in_dir(relpath, "src/common"):
        return
    for m in NONDETERMINISM_RE.finditer(code):
        line = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            relpath, line, "nondeterminism",
            "unseeded randomness breaks reproducible indexes/sketches; "
            "use common/rng (seedable, deterministic)"))


def rule_raw_sync_primitive(relpath, raw, code, findings):
    if not in_dir(relpath, "src"):
        return
    # The wrappers themselves live in common/sync.h and legitimately wrap
    # the std primitives (the deadlock detector's own graph lock included —
    # routing it through dialite::Mutex would recurse into the detector).
    if relpath == "src/common/sync.h":
        return
    for m in RAW_SYNC_RE.finditer(code):
        line = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            relpath, line, "raw-sync-primitive",
            f"std::{m.group(1)} bypasses thread-safety annotations and the "
            f"lock-order detector; use dialite::Mutex / MutexLock / CondVar "
            f"from common/sync.h"))


def rule_raw_socket(relpath, raw, code, findings):
    if not in_dir(relpath, "src"):
        return
    # The serving system's entire socket surface is src/server/net.{h,cc};
    # everything else speaks TcpConn/TcpListener so protocol and handler
    # code stays testable without the socket API.
    if relpath in ("src/server/net.h", "src/server/net.cc"):
        return
    for m in RAW_SOCKET_RE.finditer(code):
        line = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            relpath, line, "raw-socket",
            "raw BSD sockets are confined to src/server/net.{h,cc}; use "
            "TcpConn / TcpListener from server/net.h"))


GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)", re.MULTILINE)
GUARD_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)", re.MULTILINE)
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b", re.MULTILINE)


def rule_include_guard(relpath, raw, code, findings):
    if not relpath.endswith(HEADER_EXTS):
        return
    if PRAGMA_ONCE_RE.search(code):
        findings.append(Finding(
            relpath, 1, "include-guard",
            "project uses #ifndef guards, not #pragma once"))
        return
    ifndef = GUARD_IFNDEF_RE.search(code)
    define = GUARD_DEFINE_RE.search(code)
    if not ifndef or not define or ifndef.group(1) != define.group(1):
        findings.append(Finding(
            relpath, 1, "include-guard",
            "missing or mismatched #ifndef/#define include guard"))
        return
    if "#endif" not in code[define.end():]:
        findings.append(Finding(
            relpath, 1, "include-guard",
            "include guard is never closed with #endif"))


RULES = {
    "deprecated-row-api": rule_deprecated_row_api,
    "naked-thread": rule_naked_thread,
    "using-namespace-header": rule_using_namespace_header,
    "nondeterminism": rule_nondeterminism,
    "include-guard": rule_include_guard,
    "raw-sync-primitive": rule_raw_sync_primitive,
    "raw-socket": rule_raw_socket,
}


# --- Driver ------------------------------------------------------------------

def waived_lines(raw):
    """Maps line number -> set of waived rule names."""
    waivers = {}
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = WAIVER_RE.search(line)
        if m:
            waivers[lineno] = {r.strip() for r in m.group(1).split(",")}
    return waivers


def lint_file(path):
    relpath = rel(path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        return [Finding(relpath, 0, "io", f"cannot read file: {e}")]
    code = strip_comments_and_strings(raw)
    findings = []
    for run in RULES.values():
        run(relpath, raw, code, findings)
    waivers = waived_lines(raw)
    return [f for f in findings
            if f.rule not in waivers.get(f.line, set())]


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(SOURCE_EXTS):
                files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(d for d in dirs if not d.startswith("."))
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, name))
        else:
            print(f"dialite_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def self_test():
    """Every rule must fire on its known-bad fixture, and only there."""
    if not os.path.isdir(FIXTURE_DIR):
        print(f"dialite_lint: fixture dir missing: {FIXTURE_DIR}",
              file=sys.stderr)
        return 2
    # fixture file name (sans extension) -> rule expected to fire
    expected = {
        "bad_deprecated_row_api": "deprecated-row-api",
        "bad_naked_thread": "naked-thread",
        "bad_using_namespace": "using-namespace-header",
        "bad_nondeterminism": "nondeterminism",
        "bad_include_guard": "include-guard",
        "bad_pragma_once": "include-guard",
        "bad_raw_mutex": "raw-sync-primitive",
        "bad_raw_socket": "raw-socket",
    }
    failures = []
    seen = set()
    for name in sorted(os.listdir(FIXTURE_DIR)):
        stem = os.path.splitext(name)[0]
        if stem not in expected:
            continue
        seen.add(stem)
        path = os.path.join(FIXTURE_DIR, name)
        rule = expected[stem]
        # Fixtures simulate src/ files: rules scoped to src/ must still fire,
        # so lint them under a pretended src/-relative path.
        findings = lint_fixture_as_src(path)
        fired = {f.rule for f in findings}
        if rule not in fired:
            failures.append(f"{name}: expected rule '{rule}' to fire, "
                            f"got {sorted(fired) or 'nothing'}")
        # The waived twin of each fixture must stay silent for the rule.
    for stem in expected:
        if stem not in seen:
            failures.append(f"missing fixture: {stem}.*")
    # A known-good fixture must produce no findings at all.
    good = os.path.join(FIXTURE_DIR, "good_clean.cc")
    if os.path.exists(good):
        findings = lint_fixture_as_src(good)
        if findings:
            failures.append(
                "good_clean.cc should be clean but got: "
                + "; ".join(str(f) for f in findings))
    else:
        failures.append("missing fixture: good_clean.cc")
    # Waiver mechanism: a waived violation must not be reported.
    waived = os.path.join(FIXTURE_DIR, "good_waived.cc")
    if os.path.exists(waived):
        findings = lint_fixture_as_src(waived)
        if findings:
            failures.append(
                "good_waived.cc waives its violation but got: "
                + "; ".join(str(f) for f in findings))
    else:
        failures.append("missing fixture: good_waived.cc")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK: all {len(expected)} bad fixtures fire, "
          "clean + waived fixtures stay silent")
    return 0


def lint_fixture_as_src(path):
    """Lints a fixture as if it lived under src/lint_fixture/."""
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    relpath = "src/lint_fixture/" + os.path.basename(path)
    code = strip_comments_and_strings(raw)
    findings = []
    for run in RULES.values():
        run(relpath, raw, code, findings)
    waivers = waived_lines(raw)
    return [f for f in findings
            if f.rule not in waivers.get(f.line, set())]


def lint_files(files, jobs):
    """Lints `files`, fanning out to `jobs` worker processes when jobs != 1.

    Results come back in input order either way, so parallel runs print
    byte-identical reports. The pool only pays off on big trees; --jobs is
    opt-in and serial stays the default.
    """
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs == 1 or len(files) <= 1:
        return [f for path in files for f in lint_file(path)]
    import concurrent.futures
    findings = []
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        for per_file in pool.map(lint_file, files, chunksize=8):
            findings.extend(per_file)
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on its bad fixture")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint on N worker processes (0 = one per CPU; "
                             "default: serial)")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if args.jobs < 0:
        print("dialite_lint: --jobs must be >= 0", file=sys.stderr)
        sys.exit(2)

    paths = args.paths or [os.path.join(REPO_ROOT, d)
                           for d in ("src", "tests", "bench")]
    start = time.monotonic()
    files = collect_files(paths)
    findings = lint_files(files, args.jobs)
    seconds = time.monotonic() - start
    for f in findings:
        print(f)
    if findings:
        print(f"dialite_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s) ({seconds:.2f}s)", file=sys.stderr)
        sys.exit(1)
    print(f"dialite_lint: {len(files)} file(s) clean ({seconds:.2f}s)")


if __name__ == "__main__":
    main()
