#!/usr/bin/env python3
"""Diff a bench trajectory report against its committed baseline.

Usage:
    bench_compare.py BASELINE.json CURRENT.json
    bench_compare.py --self-test

Consumes the schema-v1 reports written by the figure benches' --bench-json
mode (bench/bench_json.h) and enforces the trajectory contract:

  * `schema_version` and `bench` must match exactly.
  * Every section's KEY SET must match exactly — a metric silently added or
    dropped is a schema break, reported as such.
  * `config` values must match exactly (same workload, or the comparison is
    meaningless).
  * `deterministic` / `deterministic_text` values must match exactly: these
    are result digests and pruning counters that may not drift at all.
  * `timings_us` values compare with a LOOSE catastrophic-only tolerance
    (default 4x either way): wall clocks differ across machines and CI
    runners, so only an order-of-magnitude explosion fails.
  * `ratios` values compare with a TIGHT relative tolerance (default 35%,
    with an absolute floor of 0.35 for near-zero ratios): same-run time
    ratios are machine-portable, so real regressions show here.
  * `ratios_min` (optional section) values are ONE-SIDED floors: the
    baseline records the minimum acceptable ratio (an acceptance gate,
    e.g. "snapshot open must stay >=10x faster than CSV rebuild") and the
    current report records the measured value, which may exceed the floor
    by any margin but may never fall below it. The section must be present
    in both reports or absent from both.

Exit status: 0 = within tolerance, 1 = regression/schema break, 2 = usage
or unreadable input.
"""

import json
import sys

# Tolerances — documented above and in DESIGN.md; CI imports them implicitly
# by calling this script, so change them here and the docs together.
TIMING_FACTOR = 4.0   # timings_us: fail only past 4x slower or 4x faster
RATIO_REL = 0.35      # ratios: ±35% relative ...
RATIO_FLOOR = 0.35    # ... with an absolute floor for near-zero ratios

SECTIONS = ("config", "deterministic", "deterministic_text",
            "timings_us", "ratios")

# Optional one-sided section: baseline value = acceptance floor, current
# value = measured ratio; current >= floor passes. Absent from both is fine
# (pre-floor reports); present in only one is a schema break.
MIN_SECTION = "ratios_min"


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def compare(baseline, current):
    """Returns a list of human-readable failure strings (empty = pass)."""
    fails = []

    for field in ("schema_version", "bench"):
        if baseline.get(field) != current.get(field):
            fails.append("schema break: %s: baseline=%r current=%r"
                         % (field, baseline.get(field), current.get(field)))

    for section in SECTIONS:
        b = baseline.get(section)
        c = current.get(section)
        if not isinstance(b, dict) or not isinstance(c, dict):
            fails.append("schema break: section %r missing or not an object"
                         % section)
            continue
        missing = sorted(set(b) - set(c))
        added = sorted(set(c) - set(b))
        if missing:
            fails.append("schema break: %s: keys dropped: %s"
                         % (section, ", ".join(missing)))
        if added:
            fails.append("schema break: %s: keys added: %s"
                         % (section, ", ".join(added)))
        for key in sorted(set(b) & set(c)):
            bv, cv = b[key], c[key]
            if section in ("config", "deterministic", "deterministic_text"):
                if bv != cv:
                    fails.append("%s.%s: exact mismatch: baseline=%r "
                                 "current=%r" % (section, key, bv, cv))
            elif section == "timings_us":
                if bv > 0 and not (bv / TIMING_FACTOR <= cv
                                   <= bv * TIMING_FACTOR):
                    fails.append(
                        "timings_us.%s: %.1f vs baseline %.1f exceeds the "
                        "catastrophic %gx envelope" % (key, cv, bv,
                                                       TIMING_FACTOR))
            else:  # ratios
                tol = max(RATIO_FLOOR, abs(bv) * RATIO_REL)
                if abs(cv - bv) > tol:
                    fails.append(
                        "ratios.%s: %.3f vs baseline %.3f drifts past "
                        "+/-%.3f (%d%% rel, %.2f floor)"
                        % (key, cv, bv, tol, int(RATIO_REL * 100),
                           RATIO_FLOOR))

    b_min = baseline.get(MIN_SECTION)
    c_min = current.get(MIN_SECTION)
    if b_min is None and c_min is None:
        pass  # pre-floor report pair: nothing to enforce
    elif not isinstance(b_min, dict) or not isinstance(c_min, dict):
        fails.append("schema break: section %r present in only one report "
                     "(or not an object)" % MIN_SECTION)
    else:
        missing = sorted(set(b_min) - set(c_min))
        added = sorted(set(c_min) - set(b_min))
        if missing:
            fails.append("schema break: %s: keys dropped: %s"
                         % (MIN_SECTION, ", ".join(missing)))
        if added:
            fails.append("schema break: %s: keys added: %s"
                         % (MIN_SECTION, ", ".join(added)))
        for key in sorted(set(b_min) & set(c_min)):
            if c_min[key] < b_min[key]:
                fails.append(
                    "%s.%s: %.3f falls below the %.3f acceptance floor"
                    % (MIN_SECTION, key, c_min[key], b_min[key]))
    return fails


def self_test():
    """Exercises every comparison rule; returns 0 on success."""
    base = {
        "schema_version": 1, "bench": "discovery",
        "config": {"k": 10},
        "deterministic": {"pruned": 42},
        "deterministic_text": {"digest": "abc"},
        "timings_us": {"t": 1000.0},
        "ratios": {"speedup": 2.0},
    }

    def clone():
        return json.loads(json.dumps(base))

    cases = []  # (name, mutate(current), expect_failure_substring or None)

    cases.append(("identical passes", lambda c: None, None))

    def bump_timing_ok(c):
        c["timings_us"]["t"] = 3000.0  # 3x < 4x envelope
    cases.append(("timing within envelope passes", bump_timing_ok, None))

    def bump_ratio_ok(c):
        c["ratios"]["speedup"] = 2.5  # within 35% of 2.0
    cases.append(("ratio within tolerance passes", bump_ratio_ok, None))

    def wrong_bench(c):
        c["bench"] = "integration"
    cases.append(("bench mismatch fails", wrong_bench, "schema break: bench"))

    def drop_key(c):
        del c["deterministic"]["pruned"]
    cases.append(("dropped key fails", drop_key, "keys dropped"))

    def add_key(c):
        c["ratios"]["extra"] = 1.0
    cases.append(("added key fails", add_key, "keys added"))

    def drift_config(c):
        c["config"]["k"] = 20
    cases.append(("config drift fails", drift_config, "config.k"))

    def drift_det(c):
        c["deterministic"]["pruned"] = 41
    cases.append(("deterministic drift fails", drift_det,
                  "deterministic.pruned"))

    def drift_text(c):
        c["deterministic_text"]["digest"] = "xyz"
    cases.append(("text drift fails", drift_text, "deterministic_text.digest"))

    def blow_timing(c):
        c["timings_us"]["t"] = 5000.0  # 5x > 4x envelope
    cases.append(("catastrophic timing fails", blow_timing, "timings_us.t"))

    def blow_ratio(c):
        c["ratios"]["speedup"] = 1.0  # |1.0 - 2.0| > max(0.35, 0.7)
    cases.append(("ratio regression fails", blow_ratio, "ratios.speedup"))

    ok = True
    for name, mutate, expect in cases:
        cur = clone()
        mutate(cur)
        fails = compare(base, cur)
        if expect is None:
            if fails:
                print("self-test FAIL: %s: unexpected failures: %s"
                      % (name, fails))
                ok = False
        else:
            if not any(expect in f for f in fails):
                print("self-test FAIL: %s: expected %r in %s"
                      % (name, expect, fails))
                ok = False

    # ratios_min: one-sided floor semantics, against a floor-carrying base.
    floor_base = clone()
    floor_base["ratios_min"] = {"cold_start_speedup": 10.0}

    def floor_clone():
        return json.loads(json.dumps(floor_base))

    min_cases = [
        ("ratios_min above floor passes",
         {"cold_start_speedup": 57.3}, None),
        ("ratios_min at floor passes",
         {"cold_start_speedup": 10.0}, None),
        ("ratios_min below floor fails",
         {"cold_start_speedup": 9.2}, "acceptance floor"),
        ("ratios_min dropped key fails", {}, "keys dropped"),
        ("ratios_min section missing fails", None, "present in only one"),
    ]
    for name, value, expect in min_cases:
        cur = floor_clone()
        if value is None:
            del cur["ratios_min"]
        else:
            cur["ratios_min"] = value
        fails = compare(floor_base, cur)
        if expect is None and fails:
            print("self-test FAIL: %s: unexpected failures: %s"
                  % (name, fails))
            ok = False
        elif expect is not None and not any(expect in f for f in fails):
            print("self-test FAIL: %s: expected %r in %s"
                  % (name, expect, fails))
            ok = False
    # Absent from both reports stays accepted (pre-floor baselines).
    if compare(base, clone()):
        print("self-test FAIL: absent-from-both ratios_min should pass")
        ok = False

    print("bench_compare self-test: %s" % ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[0])
        print("usage: bench_compare.py BASELINE.json CURRENT.json "
              "| --self-test")
        return 2
    try:
        baseline = load(argv[1])
        current = load(argv[2])
    except (OSError, ValueError) as e:
        print("bench_compare: cannot read input: %s" % e)
        return 2
    fails = compare(baseline, current)
    bench = baseline.get("bench", "?")
    if fails:
        for f in fails:
            print("bench_compare[%s]: %s" % (bench, f))
        print("bench_compare[%s]: FAIL (%d)" % (bench, len(fails)))
        return 1
    print("bench_compare[%s]: PASS (trajectory within tolerance)" % bench)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
