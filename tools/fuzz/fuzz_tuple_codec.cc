// libFuzzer harness: TupleCodec encode/decode identity. Builds an arbitrary
// small table from the fuzz bytes, encodes every cell to a dense uint32
// code, and checks the codec's contract:
//
//   - missing nulls map to kMissingNullCode, produced nulls to
//     kProducedNullCode, and nothing else does;
//   - every non-null code decodes to a Value Identical() to the original
//     cell (NaN excepted: it gets a fresh code per occurrence whose decoded
//     payload must still be NaN);
//   - codes are a bijection on Identical-equivalence classes: two cells
//     share a code iff their values are Identical (again modulo NaN).
//
// Input layout: byte 0 → column count (1..4); then per cell a tag byte
// (mod 5: missing null, produced null, int, double, string) followed by
// the payload (8 bytes for int/double, 1 length byte + bytes for string).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "integrate/tuple_codes.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/value.h"

namespace {

using dialite::ColumnDef;
using dialite::kMissingNullCode;
using dialite::kProducedNullCode;
using dialite::Row;
using dialite::Schema;
using dialite::Table;
using dialite::TupleCodec;
using dialite::Value;

/// Sequential consumer over the fuzz bytes.
struct ByteStream {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool Next(uint8_t* out) {
    if (pos >= size) return false;
    *out = data[pos++];
    return true;
  }
  bool Take(void* out, size_t n) {
    if (size - pos < n) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
};

bool NextValue(ByteStream* in, Value* out) {
  uint8_t tag = 0;
  if (!in->Next(&tag)) return false;
  switch (tag % 5) {
    case 0:
      *out = Value::Null(dialite::NullKind::kMissing);
      return true;
    case 1:
      *out = Value::ProducedNull();
      return true;
    case 2: {
      int64_t i = 0;
      if (!in->Take(&i, sizeof(i))) return false;
      *out = Value::Int(i);
      return true;
    }
    case 3: {
      double d = 0;
      if (!in->Take(&d, sizeof(d))) return false;
      *out = Value::Double(d);
      return true;
    }
    default: {
      uint8_t len = 0;
      if (!in->Next(&len)) return false;
      len = static_cast<uint8_t>(len % 16);
      std::string s(len, '\0');
      if (!in->Take(s.data(), len)) return false;
      *out = Value::String(std::move(s));
      return true;
    }
  }
}

bool IsNaN(const Value& v) {
  return v.is_double() && std::isnan(v.as_double());
}

[[noreturn]] void Fail(const char* what, size_t r, size_t c) {
  std::fprintf(stderr, "fuzz_tuple_codec: %s at cell (%zu, %zu)\n", what, r, c);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2 || size > (16u << 10)) return 0;
  ByteStream in{data, size};
  uint8_t width_byte = 0;
  (void)in.Next(&width_byte);
  const size_t width = 1 + width_byte % 4;

  Schema schema;
  for (size_t c = 0; c < width; ++c) {
    schema.AddColumn(ColumnDef{"c" + std::to_string(c)});
  }
  Table table("fuzz", schema);
  std::vector<Row> rows;
  constexpr size_t kMaxCells = 4096;
  while (rows.size() * width < kMaxCells) {
    Row row;
    row.reserve(width);
    Value v;
    bool complete = true;
    for (size_t c = 0; c < width; ++c) {
      if (!NextValue(&in, &v)) {
        complete = false;
        break;
      }
      row.push_back(v);
    }
    if (!complete) break;
    if (!table.AddRow(row).ok()) std::abort();  // schema width always matches
    rows.push_back(std::move(row));
  }

  TupleCodec codec;
  const std::vector<uint32_t> codes = codec.EncodeTable(table);
  if (codes.size() != rows.size() * width) {
    std::fprintf(stderr, "fuzz_tuple_codec: code count %zu != cells %zu\n",
                 codes.size(), rows.size() * width);
    std::abort();
  }

  // code -> first original cell of the class; NaN codes must stay unique.
  std::vector<const Value*> first_of_code(codec.num_codes(), nullptr);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      const Value& orig = rows[r][c];
      const uint32_t code = codes[r * width + c];
      if (code >= codec.num_codes()) Fail("code out of range", r, c);
      if (orig.is_missing_null()) {
        if (code != kMissingNullCode) Fail("missing null got non-± code", r, c);
        continue;
      }
      if (orig.is_produced_null()) {
        if (code != kProducedNullCode) {
          Fail("produced null got non-⊥ code", r, c);
        }
        continue;
      }
      if (dialite::CodeIsNull(code)) Fail("non-null cell got null code", r, c);
      const Value& decoded = codec.Decode(code);
      if (IsNaN(orig)) {
        // NaN gets a fresh code per occurrence (Identical(NaN, NaN) is
        // false); the decoded payload must still be NaN and the code fresh.
        if (!IsNaN(decoded)) Fail("NaN decoded to non-NaN", r, c);
        if (first_of_code[code] != nullptr) Fail("NaN code reused", r, c);
        first_of_code[code] = &orig;
        continue;
      }
      if (!decoded.Identical(orig)) Fail("decode(encode(v)) != v", r, c);
      if (first_of_code[code] == nullptr) {
        first_of_code[code] = &orig;
      } else if (!first_of_code[code]->Identical(orig)) {
        Fail("one code covers two non-Identical values", r, c);
      }
    }
  }
  return 0;
}
