// libFuzzer harness: SnapshotReader over arbitrary bytes. The container
// open path (magic, version, endianness, bounds, section table, CRCs) and
// the lake decode behind it must reject any mutation with a clean Status —
// never crash, over-read, or hand out out-of-bounds spans. The sanitizer
// (ASan under clang) turns memory bugs into aborts; explicit checks below
// turn contract violations into aborts.
//
// Input layout: byte 0 selects SnapshotReadOptions (bit0 = skip section
// CRC verification — the deferred-verification mode must be exactly as
// memory-safe as the checked one); the rest is the container bytes. Both
// OpenOwning and OpenBorrowing run, so the anchored and anchorless
// lifetimes are each exercised.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>

#include "lake/data_lake.h"
#include "snapshot/lake_codec.h"
#include "snapshot/snapshot_reader.h"

namespace {

using dialite::DataLake;
using dialite::ReadLake;
using dialite::Result;
using dialite::SnapshotReader;
using dialite::SnapshotReadOptions;
using dialite::SnapshotSection;

void Exercise(const SnapshotReader& reader, size_t input_size) {
  // Every advertised section must be in bounds and servable.
  for (const SnapshotSection& s : reader.sections()) {
    if (s.offset + s.length > input_size) {
      std::fprintf(stderr, "fuzz_snapshot: section '%s' out of bounds\n",
                   s.name.c_str());
      std::abort();
    }
    Result<std::span<const uint8_t>> payload = reader.Section(s.name);
    if (!payload.ok()) {
      std::fprintf(stderr, "fuzz_snapshot: listed section '%s' not served\n",
                   s.name.c_str());
      std::abort();
    }
    // Touch first/last byte: ASan flags any bad span.
    if (!payload->empty()) {
      volatile uint8_t sink = payload->front();
      sink = payload->back();
      (void)sink;
    }
  }
  // Decoding a lake from a structurally valid container must either
  // succeed or fail with a Status — payload-level garbage is reachable
  // when section CRCs were skipped or the payload was internally
  // inconsistent but checksummed as written.
  Result<std::unique_ptr<DataLake>> lake = ReadLake(reader);
  if (lake.ok()) {
    for (const std::string& name : (*lake)->table_names()) {
      (void)(*lake)->Get(name)->num_rows();
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > (1u << 20)) return 0;
  SnapshotReadOptions options;
  options.verify_section_crcs = (data[0] & 1) == 0;
  const std::span<const uint8_t> bytes(data + 1, size - 1);

  Result<SnapshotReader> borrowing =
      SnapshotReader::OpenBorrowing(bytes, options);
  if (borrowing.ok()) Exercise(*borrowing, bytes.size());

  std::string owned(reinterpret_cast<const char*>(data) + 1, size - 1);
  Result<SnapshotReader> owning =
      SnapshotReader::OpenOwning(std::move(owned), options);
  if (owning.ok() != borrowing.ok()) {
    std::fprintf(stderr,
                 "fuzz_snapshot: OpenOwning and OpenBorrowing disagree\n");
    std::abort();
  }
  if (owning.ok()) Exercise(*owning, bytes.size());
  return 0;
}
