// Standalone replacement for libFuzzer's driver, used when the toolchain
// has no -fsanitize=fuzzer (e.g. gcc-only containers). Replays every file
// (or every regular file inside every directory) passed on argv through
// LLVMFuzzerTestOneInput, so the checked-in corpora double as regression
// inputs on any compiler. No mutation happens here — real fuzzing needs
// the clang build (see tools/fuzz/CMakeLists.txt).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t ran = 0;
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const std::string& f : files) {
        failures += RunFile(f);
        ++ran;
      }
    } else {
      failures += RunFile(p.string());
      ++ran;
    }
  }
  std::fprintf(stderr, "fuzz driver: replayed %zu input(s), %d unreadable\n",
               ran, failures);
  return failures == 0 ? 0 : 1;
}
