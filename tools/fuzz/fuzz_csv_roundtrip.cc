// libFuzzer harness: CSV parse → write → reparse → write must be a fixed
// point (the writer emits canonical CSV, so one round of canonicalization
// must be idempotent). Catches parser/writer disagreements — quoting,
// null rendering, numeric re-inference — as aborts instead of silent data
// corruption on real lake tables.
//
// Input layout: byte 0 selects CsvOptions (bit0 has_header, bit1
// infer_types, bit2 treat_na_strings_as_null); the rest is the CSV text.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "table/csv.h"
#include "table/table.h"

namespace {

using dialite::CsvOptions;
using dialite::CsvReader;
using dialite::CsvWriter;
using dialite::Result;
using dialite::Table;

[[noreturn]] void Fail(const char* what, const std::string& a,
                       const std::string& b) {
  std::fprintf(stderr,
               "fuzz_csv_roundtrip: %s\n--- first write ---\n%s\n"
               "--- second write ---\n%s\n",
               what, a.c_str(), b.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > (64u << 10)) return 0;
  CsvOptions options;
  options.has_header = (data[0] & 1) != 0;
  options.infer_types = (data[0] & 2) != 0;
  options.treat_na_strings_as_null = (data[0] & 4) != 0;
  const std::string_view text(reinterpret_cast<const char*>(data) + 1,
                              size - 1);

  Result<Table> first = CsvReader::Parse(text, "fuzz", options);
  if (!first.ok()) return 0;  // rejecting malformed input is fine

  const std::string written = CsvWriter::ToString(first.value(), options);
  Result<Table> second = CsvReader::Parse(written, "fuzz", options);
  if (!second.ok()) {
    Fail(("writer output does not reparse: " + second.status().ToString())
             .c_str(),
         written, "<unparseable>");
  }
  const std::string rewritten = CsvWriter::ToString(second.value(), options);
  if (written != rewritten) {
    Fail("canonical CSV is not a fixed point (write(parse(write)) differs)",
         written, rewritten);
  }
  // Shape must survive the round-trip exactly.
  if (first->num_rows() != second->num_rows() ||
      first->num_columns() != second->num_columns()) {
    Fail("table shape changed across round-trip", written, rewritten);
  }
  return 0;
}
